module Sim = Sl_engine.Sim
module Mailbox = Sl_engine.Mailbox
module Params = Switchless.Params
module Chip = Switchless.Chip
module Isa = Switchless.Isa
module Ptid = Switchless.Ptid
module Memory = Switchless.Memory
module Histogram = Sl_util.Histogram
module Swsched = Sl_baseline.Swsched
module Openloop = Sl_workload.Openloop

type stats = {
  completed : int;
  latencies : Histogram.t;
  slowdowns : float array;
  elapsed_cycles : int;
  switch_overhead_cycles : float;
}

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else begin
    let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
    let idx = max 0 (min (n - 1) (rank - 1)) in
    sorted.(idx)
  end

type config = {
  params : Params.t;
  seed : int64;
  cores : int;
  rate_per_kcycle : float;
  service : Sl_util.Dist.t;
  count : int;
}

let record latencies slowdowns (req : Openloop.request) =
  let sojourn = Sim.now () - req.Openloop.arrival in
  Histogram.record latencies sojourn;
  let demand = float_of_int (max 1 req.Openloop.service_cycles) in
  slowdowns := (float_of_int sojourn /. demand) :: !slowdowns

let finish ~sim ~latencies ~slowdowns ~switch_overhead =
  let arr = Array.of_list !slowdowns in
  Array.sort compare arr;
  {
    completed = Histogram.count latencies;
    latencies;
    slowdowns = arr;
    elapsed_cycles = Sim.time sim;
    switch_overhead_cycles = switch_overhead;
  }

(* --- software thread-per-request ---------------------------------------- *)

let run_software ?quantum cfg =
  let sim = Sim.create () in
  let sched = Swsched.create sim cfg.params ?quantum ~cores:cfg.cores () in
  let latencies = Histogram.create () in
  let slowdowns = ref [] in
  let rng = Sl_util.Rng.create cfg.seed in
  Openloop.run sim rng
    ~interarrival:(Openloop.poisson ~rate_per_kcycle:cfg.rate_per_kcycle)
    ~service:cfg.service ~count:cfg.count
    ~sink:(fun req ->
      (* One fresh software thread per request. *)
      let worker = Swsched.thread sched () in
      Sim.fork (fun () ->
          Swsched.exec worker req.Openloop.service_cycles;
          record latencies slowdowns req));
  Sim.run sim;
  finish ~sim ~latencies ~slowdowns
    ~switch_overhead:(Swsched.switch_overhead_cycles sched)

(* --- hardware thread-per-request ---------------------------------------- *)

type hw_worker = {
  doorbell : Memory.addr;
  mutable slot_request : Openloop.request option;
  mutable hw_enlisted : bool;  (* an entry for this worker sits in [free] *)
  mutable hw_lives : int;
}

(* --- closed-loop clients against the hardware pool ----------------------- *)

module Closedloop = Sl_workload.Closedloop
module Latency = Sl_workload.Latency

type closed_stats = {
  clients : int;
  issued : int;
  finished : int;
  c_timed_out : int;
  lat : Latency.summary;
  wall_cycles : int;
}

type closed_worker = {
  bell : Memory.addr;
  mutable slot : (Openloop.request * (unit -> unit)) option;
  mutable enlisted : bool;  (* an entry for this worker sits in [free] *)
  mutable lives : int;
}

let run_hw_pool_closed ?(pool_per_core = 64) ?timeout ?slo ?horizon ~clients
    ~think cfg =
  if clients <= 0 then
    invalid_arg "Server.run_hw_pool_closed: clients must be positive";
  let sim = Sim.create () in
  let chip = Chip.create sim cfg.params ~cores:cfg.cores in
  let memory = Chip.memory chip in
  let free = Mailbox.create () in
  let inbox = Mailbox.create () in
  for core = 0 to cfg.cores - 1 do
    for i = 0 to pool_per_core - 1 do
      let ptid = (core * 1024) + i + 1 in
      let worker =
        { bell = Memory.alloc memory 1; slot = None; enlisted = false; lives = 0 }
      in
      let th = Chip.add_thread chip ~core ~ptid ~mode:Ptid.User () in
      Chip.attach th (fun th ->
          (* Pool workers park in mwait between requests by design; keep
             them out of the abandoned-process suspect report. *)
          Sim.set_daemon true;
          (* The body doubles as the cold-restart boot path.  Arm first —
             a bell rung before MONITOR executes is architecturally
             lost — then requeue any request orphaned by a crash-stop
             (died mid-request, or assigned into the dead window) so the
             closed loop's conservation law survives, and rejoin the free
             pool unless our entry is still queued there. *)
          Isa.monitor th worker.bell;
          worker.lives <- worker.lives + 1;
          if worker.lives > 1 then Sl_util.Recovery.bump "server.crash_restart";
          (match worker.slot with
          | Some job ->
            worker.slot <- None;
            Sl_util.Recovery.bump "server.crash_requeue";
            Mailbox.send inbox job
          | None -> ());
          if not worker.enlisted then begin
            worker.enlisted <- true;
            Mailbox.send free worker
          end;
          let rec serve () =
            let _ = Isa.mwait th in
            (match worker.slot with
            | Some (req, complete) ->
              worker.slot <- None;
              Isa.exec th req.Openloop.service_cycles;
              complete ();
              worker.enlisted <- true;
              Mailbox.send free worker
            | None -> ());
            serve ()
          in
          serve ());
      Chip.boot th
    done
  done;
  Sim.spawn sim (fun () ->
      (* Like the pool workers, the dispatcher parks by design when the
         pool is exhausted; under injected faults wedged workers never
         return to [free], and the clients' timeouts — not the
         dispatcher — carry liveness.  Unbounded on purpose: crash-stop
         requeues can push dispatches past [cfg.count]. *)
      Sim.set_daemon true;
      while true do
        let (req, _) as job = Mailbox.recv inbox in
        let worker = Mailbox.recv free in
        (* No yield between the pop and the bell write, so a restarting
           worker always observes either (enlisted, no slot) or
           (assigned, slot set) — never the half-claimed state. *)
        worker.enlisted <- false;
        worker.slot <- Some job;
        Memory.write memory worker.bell (Int64.of_int req.Openloop.req_id)
      done);
  let rng = Sl_util.Rng.create cfg.seed in
  let cl =
    Closedloop.start ?timeout ?slo sim rng ~clients ~think ~service:cfg.service
      ~count:cfg.count
      ~submit:(fun req ~complete -> Mailbox.send inbox (req, complete))
  in
  Sim.run ?until:horizon sim;
  {
    clients;
    issued = Closedloop.issued cl;
    finished = Closedloop.completed cl;
    c_timed_out = Closedloop.timed_out cl;
    lat = Latency.summarize (Closedloop.latency cl) ~elapsed:(Sim.time sim);
    wall_cycles = Sim.time sim;
  }

let run_hw_pool ?(pool_per_core = 64) cfg =
  let sim = Sim.create () in
  let chip = Chip.create sim cfg.params ~cores:cfg.cores in
  let memory = Chip.memory chip in
  let latencies = Histogram.create () in
  let slowdowns = ref [] in
  let free = Mailbox.create () in
  let inbox = Mailbox.create () in
  (* Build the worker pool: each worker parks in mwait on its doorbell. *)
  for core = 0 to cfg.cores - 1 do
    for i = 0 to pool_per_core - 1 do
      let ptid = (core * 1024) + i + 1 in
      let worker =
        {
          doorbell = Memory.alloc memory 1;
          slot_request = None;
          hw_enlisted = false;
          hw_lives = 0;
        }
      in
      let th = Chip.add_thread chip ~core ~ptid ~mode:Ptid.User () in
      Chip.attach th (fun th ->
          (* Boot path doubles as crash recovery (see run_hw_pool_closed):
             arm, requeue an orphaned request, rejoin the free pool. *)
          Isa.monitor th worker.doorbell;
          (* Join the free pool only once the monitor is armed — a
             doorbell rung before MONITOR executes is architecturally
             lost (same order as run_hw_pool_closed). *)
          worker.hw_lives <- worker.hw_lives + 1;
          if worker.hw_lives > 1 then
            Sl_util.Recovery.bump "server.crash_restart";
          (match worker.slot_request with
          | Some req ->
            worker.slot_request <- None;
            Sl_util.Recovery.bump "server.crash_requeue";
            Mailbox.send inbox req
          | None -> ());
          if not worker.hw_enlisted then begin
            worker.hw_enlisted <- true;
            Mailbox.send free worker
          end;
          let rec serve () =
            let _ = Isa.mwait th in
            (match worker.slot_request with
            | Some req ->
              worker.slot_request <- None;
              Isa.exec th req.Openloop.service_cycles;
              record latencies slowdowns req;
              worker.hw_enlisted <- true;
              Mailbox.send free worker
            | None -> ());
            serve ()
          in
          serve ());
      Chip.boot th
    done
  done;
  (* Dispatch: hardware steering (smartNIC-style) — pick a parked worker
     and ring its doorbell; requests queue when the pool is exhausted.
     Unbounded so crash-stop requeues still reach a worker after the
     first [cfg.count] dispatches. *)
  Sim.spawn sim (fun () ->
      Sim.set_daemon true;
      while true do
        let req = Mailbox.recv inbox in
        let worker = Mailbox.recv free in
        worker.hw_enlisted <- false;
        worker.slot_request <- Some req;
        Memory.write memory worker.doorbell (Int64.of_int req.Openloop.req_id)
      done);
  let rng = Sl_util.Rng.create cfg.seed in
  Openloop.run sim rng
    ~interarrival:(Openloop.poisson ~rate_per_kcycle:cfg.rate_per_kcycle)
    ~service:cfg.service ~count:cfg.count
    ~sink:(fun req -> Mailbox.send inbox req);
  Sim.run sim;
  finish ~sim ~latencies ~slowdowns ~switch_overhead:0.0
