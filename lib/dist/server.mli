(** Thread-per-request servers (§2 "Simpler Distributed Programming" and
    §4's processor-sharing claim).

    An open-loop request stream (Poisson arrivals, configurable
    service-time dispersion) hits a server built two ways:

    - {!run_software}: thread-per-request with {e software} threads
      multiplexed on a conventional machine — run-to-completion FCFS by
      default, or preemptive round-robin with [quantum] (each switch pays
      the full software cost).
    - {!run_hw_pool}: thread-per-request with {e hardware} threads — a
      pool of workers parked in [mwait]; dispatch is a doorbell write, and
      all active requests share the pipeline processor-sharing style.

    The headline metric is the tail of the {e slowdown} distribution
    (response time / service demand, RackSched/Shinjuku methodology):
    under high CV² service times, PS keeps short requests from queueing
    behind long ones, while FCFS multiplexing makes them wait. *)

type stats = {
  completed : int;
  latencies : Sl_util.Histogram.t;  (** Sojourn times (cycles). *)
  slowdowns : float array;  (** Sorted ascending. *)
  elapsed_cycles : Sl_engine.Sim.Time.t;
  switch_overhead_cycles : float;  (** Software-world context-switch tax. *)
}

val percentile : float array -> float -> float
(** [percentile sorted q] with [q] in [0,1]; 0 on empty input. *)

type config = {
  params : Switchless.Params.t;
  seed : int64;
  cores : int;
  rate_per_kcycle : float;
  service : Sl_util.Dist.t;
  count : int;
}

val run_software : ?quantum:Sl_engine.Sim.Time.t -> config -> stats

val run_hw_pool : ?pool_per_core:int -> config -> stats
(** [pool_per_core] defaults to 64 hardware worker threads per core. *)
