(** Thread-per-request servers (§2 "Simpler Distributed Programming" and
    §4's processor-sharing claim).

    An open-loop request stream (Poisson arrivals, configurable
    service-time dispersion) hits a server built two ways:

    - {!run_software}: thread-per-request with {e software} threads
      multiplexed on a conventional machine — run-to-completion FCFS by
      default, or preemptive round-robin with [quantum] (each switch pays
      the full software cost).
    - {!run_hw_pool}: thread-per-request with {e hardware} threads — a
      pool of workers parked in [mwait]; dispatch is a doorbell write, and
      all active requests share the pipeline processor-sharing style.

    The headline metric is the tail of the {e slowdown} distribution
    (response time / service demand, RackSched/Shinjuku methodology):
    under high CV² service times, PS keeps short requests from queueing
    behind long ones, while FCFS multiplexing makes them wait. *)

type stats = {
  completed : int;
  latencies : Sl_util.Histogram.t;  (** Sojourn times (cycles). *)
  slowdowns : float array;  (** Sorted ascending. *)
  elapsed_cycles : Sl_engine.Sim.Time.t;
  switch_overhead_cycles : float;  (** Software-world context-switch tax. *)
}

val percentile : float array -> float -> float
(** [percentile sorted q] with [q] in [0,1]; 0 on empty input. *)

type config = {
  params : Switchless.Params.t;
  seed : int64;
  cores : int;
  rate_per_kcycle : float;
  service : Sl_util.Dist.t;
  count : int;
}

val run_software : ?quantum:Sl_engine.Sim.Time.t -> config -> stats

val run_hw_pool : ?pool_per_core:int -> config -> stats
(** [pool_per_core] defaults to 64 hardware worker threads per core. *)

(** {2 Closed-loop clients}

    The same hardware pool driven by a fixed client population
    ({!Sl_workload.Closedloop}) instead of an open-loop stream: each
    client thinks, submits, and blocks until its request completes, so a
    saturated pool slows the clients instead of growing a queue.  E16
    contrasts the two: the closed loop's p99 stays bounded at client
    counts far past the capacity that collapses the open-loop sweep. *)

type closed_stats = {
  clients : int;
  issued : int;
  finished : int;  (** Requests completed (excludes timeouts). *)
  c_timed_out : int;  (** Requests abandoned by their client's [?timeout]. *)
  lat : Sl_workload.Latency.summary;  (** Submit → complete sojourns. *)
  wall_cycles : Sl_engine.Sim.Time.t;
}

val run_hw_pool_closed :
  ?pool_per_core:int -> ?timeout:Sl_engine.Sim.Time.t -> ?slo:int ->
  ?horizon:Sl_engine.Sim.Time.t ->
  clients:int -> think:Sl_util.Dist.t -> config -> closed_stats
(** [run_hw_pool_closed ~clients ~think cfg] runs [cfg.count] requests
    from [clients] closed-loop clients (think-time distribution [think],
    service demands from [cfg.service]) against the {!run_hw_pool} worker
    pool.  [cfg.rate_per_kcycle] is ignored — a closed loop has no offered
    rate, only a population.  [timeout]/[slo] forward to
    {!Sl_workload.Closedloop.start}.

    Both pool runners survive injected crash-stops: a worker's body is its
    own boot path, so a cold restart re-arms the doorbell monitor,
    requeues any request orphaned in its slot (counted under the
    [server.crash_requeue] recovery site) and rejoins the free pool —
    request conservation ([issued = finished + timed_out] here, completed
    = count in {!run_hw_pool}) holds across arbitrary crash schedules as
    long as clients carry a [timeout].  [horizon], when given, bounds the
    simulated time ([Sl_engine.Sim.run ~until]) so a fault schedule that
    wedges the pool returns with the shortfall visible in the counts
    instead of hanging the explorer. *)
