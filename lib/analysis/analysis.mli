(** Front door of the simulation sanitizers.

    [Analysis] attaches the {!Race_detector} and {!Sanitizer} to a chip
    through its probe, collects their findings (deduplicated, each with a
    tail of recent probe events as context), and tracks raw-vs-tracked
    store counts so the deadlock heuristic can tell DMA-rung doorbells
    from thread-rung ones.

    Everything is opt-in and default-off: a chip without a probe pays one
    [option] test per instrumented site, so benchmark numbers are
    unaffected unless [SWITCHLESS_SANITIZE] (or a test) turns this on.

    Two ways to attach:
    - {!enable} on a chip you hold;
    - {!enable_all}, which installs the global {!Switchless.Chip}
      creation hook so chips built deep inside experiment runners are
      instrumented too — see {!with_all} for the scoped version. *)

open Switchless

type config = {
  check_reads : bool;
      (** [true] = strict (TSan-style) read checking; [false] (default) =
          hardware-coherent model where loads acquire the last writer's
          clock and only write-write races are reported.  See
          {!Race_detector}. *)
  max_findings : int;  (** Stop recording past this many (still counted). *)
  trace_capacity : int;  (** Probe events kept as context for findings. *)
}

val default_config : config

type t

val enable : ?config:config -> Chip.t -> t
(** Install the probe and a memory write hook on the chip.  Replaces any
    previously installed probe. *)

val finish : t -> Report.finding list
(** Run end-of-simulation checks (deadlock, state-store audit), detach
    the probe, and return all findings.  Idempotent. *)

val findings : t -> Report.finding list
(** Findings so far, oldest first, without running the final checks. *)

val dropped : t -> int
(** Distinct findings discarded because [max_findings] was reached. *)

(** {2 Instrumenting chips created elsewhere} *)

type collector

val enable_all : ?config:config -> unit -> collector
(** Instrument every chip created from now on (via the global creation
    hook).  Only one collector can be active at a time. *)

val disable_all : unit -> unit
(** Stop instrumenting newly created chips (already-attached probes keep
    running until {!finish}). *)

val harvest : collector -> Report.finding list
(** {!finish} every chip the collector attached to; findings in chip
    creation order. *)

val with_all : ?config:config -> (unit -> 'a) -> 'a * Report.finding list
(** [with_all f] = {!enable_all}, run [f], {!disable_all} (also on
    exception), {!harvest}. *)
