open Switchless
module Sim = Sl_engine.Sim
module Trace = Sl_engine.Trace

type config = { check_reads : bool; max_findings : int; trace_capacity : int }

let default_config = { check_reads = false; max_findings = 100; trace_capacity = 64 }

type counts = { mutable total : int; mutable tracked : int }

type t = {
  chip : Chip.t;
  config : config;
  trace : Trace.t;
  writes : (Memory.addr, counts) Hashtbl.t;
  seen : (string, unit) Hashtbl.t;
  mutable findings_rev : Report.finding list;
  mutable dropped : int;
  mutable events : int;
  mutable race : Race_detector.t option;
  mutable sanitizer : Sanitizer.t option;
  mutable finished : bool;
}

let counts_for t addr =
  match Hashtbl.find_opt t.writes addr with
  | Some c -> c
  | None ->
    let c = { total = 0; tracked = 0 } in
    Hashtbl.replace t.writes addr c;
    c

let addr_writes t addr =
  match Hashtbl.find_opt t.writes addr with
  | None -> (0, 0)
  | Some c -> (c.total, c.tracked)

let context t =
  List.map (fun (time, msg) -> Printf.sprintf "t=%d %s" time msg) (Trace.events t.trace)

let record t ~rule ~key ~message =
  if not (Hashtbl.mem t.seen key) then begin
    Hashtbl.replace t.seen key ();
    if List.length t.findings_rev >= t.config.max_findings then
      t.dropped <- t.dropped + 1
    else
      t.findings_rev <-
        {
          Report.rule;
          key;
          time = Sim.time (Chip.sim t.chip);
          message;
          context = context t;
        }
        :: t.findings_rev
  end

(* Audit the state stores on a coarse cadence so placement-accounting bugs
   surface near where they happen, not only at the end of the run. *)
let store_check_period = 4096

let on_probe_event t ev =
  Trace.recordf t.trace (Chip.sim t.chip) "%s" (Format.asprintf "%a" Probe.pp ev);
  (match ev with
  | Probe.Mem_write { addr; _ } -> (counts_for t addr).tracked <- (counts_for t addr).tracked + 1
  | _ -> ());
  (match t.race with Some r -> Race_detector.on_event r ev | None -> ());
  (match t.sanitizer with Some s -> Sanitizer.on_event s ev | None -> ());
  t.events <- t.events + 1;
  if t.events mod store_check_period = 0 then
    match t.sanitizer with Some s -> Sanitizer.check_stores s | None -> ()

let enable ?(config = default_config) chip =
  let t =
    {
      chip;
      config;
      trace = Trace.create ~capacity:config.trace_capacity ();
      writes = Hashtbl.create 256;
      seen = Hashtbl.create 64;
      findings_rev = [];
      dropped = 0;
      events = 0;
      race = None;
      sanitizer = None;
      finished = false;
    }
  in
  let report ~rule ~key ~message = record t ~rule ~key ~message in
  let race = Race_detector.create ~check_reads:config.check_reads
      ~now:(fun () -> Sim.time (Chip.sim chip))
      ~report
  in
  let sanitizer =
    Sanitizer.create ~chip ~report ~writers:(Race_detector.writers race)
  in
  t.race <- Some race;
  t.sanitizer <- Some sanitizer;
  Memory.add_write_hook (Chip.memory chip) (fun addr _value ->
      (counts_for t addr).total <- (counts_for t addr).total + 1);
  Chip.set_probe chip (on_probe_event t);
  t

let findings t = List.rev t.findings_rev

let dropped t = t.dropped

let finish t =
  if not t.finished then begin
    t.finished <- true;
    (match t.sanitizer with
    | Some s -> Sanitizer.finish s ~addr_writes:(addr_writes t)
    | None -> ());
    Chip.clear_probe t.chip
  end;
  findings t

(** {2 Fleet enablement via the chip creation hook} *)

type collector = { cfg : config; mutable active : t list }

let enable_all ?(config = default_config) () =
  let c = { cfg = config; active = [] } in
  Chip.set_creation_hook (fun chip -> c.active <- enable ~config chip :: c.active);
  c

let disable_all () = Chip.clear_creation_hook ()

let harvest c = List.concat_map finish (List.rev c.active)

let with_all ?(config = default_config) f =
  let c = enable_all ~config () in
  let result =
    try f ()
    with e ->
      disable_all ();
      raise e
  in
  disable_all ();
  (result, harvest c)
