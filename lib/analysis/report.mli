(** Findings produced by the runtime sanitizers.

    A finding identifies the violated rule, when (simulated time) it was
    detected, and the recent probe-event trace leading up to it. *)

type finding = {
  rule : string;  (** e.g. ["race"], ["lifecycle"], ["stale-tdt"], ["deadlock"]. *)
  key : string;
      (** Deduplication key: repeated dynamic instances of the same static
          problem (same addresses, same thread pair) collapse to one
          finding. *)
  time : Sl_engine.Sim.Time.t;  (** Simulated time of first detection. *)
  message : string;
  context : string list;
      (** The most recent probe events before detection, oldest first. *)
}

val pp : Format.formatter -> finding -> unit

val summary : finding list -> string
(** One line: total count and per-rule breakdown, or ["no findings"]. *)
