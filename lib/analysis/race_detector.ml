open Switchless

type access = { ptid : int; epoch : int; time : int }

type addr_state = {
  mutable writer : access option;
  mutable writer_clock : Vclock.t option;
  readers : (int, access) Hashtbl.t;  (* strict mode: last read per ptid *)
}

type t = {
  check_reads : bool;
  now : unit -> int;
  report : rule:string -> key:string -> message:string -> unit;
  clocks : (int, Vclock.t) Hashtbl.t;
  addrs : (Memory.addr, addr_state) Hashtbl.t;
  writer_sets : (Memory.addr, (int, unit) Hashtbl.t) Hashtbl.t;
}

let create ~check_reads ~now ~report =
  {
    check_reads;
    now;
    report;
    clocks = Hashtbl.create 64;
    addrs = Hashtbl.create 256;
    writer_sets = Hashtbl.create 256;
  }

let clock_of t ptid =
  match Hashtbl.find_opt t.clocks ptid with
  | Some c -> c
  | None ->
    let c = Vclock.create () in
    (* Start at 1 so the very first access has a non-zero epoch and is
       unordered w.r.t. clocks that never synchronized with this thread. *)
    Vclock.tick c ptid;
    Hashtbl.replace t.clocks ptid c;
    c

let addr_state t addr =
  match Hashtbl.find_opt t.addrs addr with
  | Some st -> st
  | None ->
    let st = { writer = None; writer_clock = None; readers = Hashtbl.create 4 } in
    Hashtbl.replace t.addrs addr st;
    st

let writers t addr =
  match Hashtbl.find_opt t.writer_sets addr with
  | None -> []
  | Some set -> Hashtbl.fold (fun p () acc -> p :: acc) set [] |> List.sort compare

let note_writer t addr ptid =
  let set =
    match Hashtbl.find_opt t.writer_sets addr with
    | Some s -> s
    | None ->
      let s = Hashtbl.create 4 in
      Hashtbl.replace t.writer_sets addr s;
      s
  in
  Hashtbl.replace set ptid ()

(* [prior] happened-before the current access by [ptid] iff its epoch is
   covered by [ptid]'s clock. *)
let ordered clock prior = prior.epoch <= Vclock.get clock prior.ptid

let race_key kind addr a b =
  let lo, hi = if a < b then (a, b) else (b, a) in
  Printf.sprintf "%s:0x%x:%d:%d" kind addr lo hi

(* Release half of a synchronization edge: hand the actor's clock to the
   target, then advance the actor so later actor work is not covered. *)
let sync_edge t ~from_ ~to_ =
  let src = clock_of t from_ and dst = clock_of t to_ in
  Vclock.merge ~into:dst src;
  Vclock.tick src from_

let on_write t ~ptid ~addr =
  let c = clock_of t ptid in
  let st = addr_state t addr in
  (match st.writer with
  | Some prev when prev.ptid <> ptid && not (ordered c prev) ->
    t.report ~rule:"race"
      ~key:(race_key "ww" addr ptid prev.ptid)
      ~message:
        (Printf.sprintf
           "write-write race on [0x%x]: ptid %d (now, t=%d) vs ptid %d (t=%d) \
            are unordered by any start/stop/rpull/rpush/mwait edge"
           addr ptid (t.now ()) prev.ptid prev.time)
  | _ -> ());
  if t.check_reads then
    Hashtbl.iter
      (fun rptid racc ->
        if rptid <> ptid && not (ordered c racc) then
          t.report ~rule:"race"
            ~key:(race_key "rw" addr ptid rptid)
            ~message:
              (Printf.sprintf
                 "read-write race on [0x%x]: write by ptid %d (t=%d) vs read \
                  by ptid %d (t=%d) are unordered"
                 addr ptid (t.now ()) rptid racc.time))
      st.readers;
  st.writer <- Some { ptid; epoch = Vclock.get c ptid; time = t.now () };
  Vclock.tick c ptid;
  st.writer_clock <- Some (Vclock.copy c);
  Hashtbl.reset st.readers;
  note_writer t addr ptid

let on_read t ~ptid ~addr =
  let c = clock_of t ptid in
  let st = addr_state t addr in
  if t.check_reads then begin
    (match st.writer with
    | Some prev when prev.ptid <> ptid && not (ordered c prev) ->
      t.report ~rule:"race"
        ~key:(race_key "wr" addr ptid prev.ptid)
        ~message:
          (Printf.sprintf
             "write-read race on [0x%x]: read by ptid %d (t=%d) vs write by \
              ptid %d (t=%d) are unordered"
             addr ptid (t.now ()) prev.ptid prev.time)
    | _ -> ());
    Hashtbl.replace st.readers ptid
      { ptid; epoch = Vclock.get c ptid; time = t.now () };
    Vclock.tick c ptid
  end
  else
    (* Hardware-coherent model: a load observes the latest committed store
       of the word, so it acquires the writer's clock (a reads-from edge).
       Single-writer polling protocols are then race-free by construction,
       and only unordered write-write conflicts remain reportable. *)
    match st.writer_clock with
    | Some wc -> Vclock.merge ~into:c wc
    | None -> ()

let on_event t = function
  | Probe.Mem_write { ptid; addr; _ } -> on_write t ~ptid ~addr
  | Probe.Mem_read { ptid; addr; _ } -> on_read t ~ptid ~addr
  | Probe.Start_edge { actor = Probe.Thread actor; target; _ } ->
    sync_edge t ~from_:actor ~to_:target
  | Probe.Start_edge { actor = Probe.Boot; _ } -> ()
  | Probe.Stop_edge { actor = Probe.Thread actor; target } ->
    sync_edge t ~from_:target ~to_:actor
  | Probe.Stop_edge { actor = Probe.Boot; _ } -> ()
  | Probe.Reg_pull { actor; target; _ } -> sync_edge t ~from_:target ~to_:actor
  | Probe.Reg_push { actor; target; _ } -> sync_edge t ~from_:actor ~to_:target
  | Probe.Mwait_woke { ptid; addr; _ } -> (
    (* The wakeup publishes the triggering writer's history to the waiter
       even though the waiter never issues a load of the doorbell. *)
    match (addr_state t addr).writer_clock with
    | Some wc -> Vclock.merge ~into:(clock_of t ptid) wc
    | None -> ())
  | Probe.Monitor_armed _ | Probe.Mwait_parked _ | Probe.State_change _
  | Probe.Translated _ | Probe.Invtid_issued _ | Probe.Exception_raised _
  | Probe.Mwait_timeout _ | Probe.Fault_injected _ ->
    ()
