open Switchless

type t = {
  chip : Chip.t;
  report : rule:string -> key:string -> message:string -> unit;
  writers : Memory.addr -> int list;
  mirror : (int, Ptid.state) Hashtbl.t;
}

let create ~chip ~report ~writers =
  { chip; report; writers; mirror = Hashtbl.create 32 }

let state_name st = Format.asprintf "%a" Ptid.pp_state st

let allowed_transition = function
  | Ptid.Disabled, Ptid.Runnable (* boot / start-wake *)
  | Ptid.Runnable, Ptid.Disabled (* stop / body-end / fault *)
  | Ptid.Runnable, Ptid.Waiting (* mwait-park *)
  | Ptid.Waiting, Ptid.Runnable (* mwait-wake *)
  | Ptid.Waiting, Ptid.Disabled (* force-stop *) ->
    true
  | _ -> false

let mirror_state t ptid =
  (* Threads are born disabled, so an unseen ptid mirrors as Disabled. *)
  Option.value ~default:Ptid.Disabled (Hashtbl.find_opt t.mirror ptid)

let on_state_change t ~ptid ~from_ ~to_ ~reason =
  let expected = mirror_state t ptid in
  if expected <> from_ then
    t.report ~rule:"lifecycle"
      ~key:(Printf.sprintf "mirror:%d:%s:%s" ptid (state_name expected) (state_name from_))
      ~message:
        (Printf.sprintf
           "ptid %d transition %s -> %s (%s) but the last observed state was %s: \
            a state change bypassed the probe"
           ptid (state_name from_) (state_name to_) reason (state_name expected));
  if not (allowed_transition (from_, to_)) then
    t.report ~rule:"lifecycle"
      ~key:(Printf.sprintf "transition:%d:%s:%s" ptid (state_name from_) (state_name to_))
      ~message:
        (Printf.sprintf "ptid %d made illegal transition %s -> %s (%s)" ptid
           (state_name from_) (state_name to_) reason);
  Hashtbl.replace t.mirror ptid to_

let pp_entry ppf = function
  | None -> Format.pp_print_string ppf "no entry"
  | Some (ptid, perms) -> Format.fprintf ppf "ptid %d perms %a" ptid Tdt.pp_perms perms

let on_translated t ~actor ~vtid ~table ~used =
  let authoritative = Tdt.lookup table ~vtid in
  if used <> authoritative then
    t.report ~rule:"stale-tdt"
      ~key:(Printf.sprintf "stale:%d:%d:%d" (Tdt.id table) vtid actor)
      ~message:
        (Format.asprintf
           "ptid %d used a stale cached translation for vtid %d of table %d: \
            hardware acted on %a but the table now says %a — an invtid is \
            missing after a table update"
           actor vtid (Tdt.id table) pp_entry used pp_entry authoritative)

let on_reg_access t ~insn ~actor ~target =
  if mirror_state t target <> Ptid.Disabled then
    t.report ~rule:"lifecycle"
      ~key:(Printf.sprintf "%s:%d:%d" insn actor target)
      ~message:
        (Printf.sprintf
           "ptid %d performed %s on ptid %d, whose mirrored state is %s (must \
            be Disabled)"
           actor insn target
           (state_name (mirror_state t target)))

let monitor_key th = { Monitor.core_id = Chip.home_core th; ptid = Chip.ptid th }

let on_parked t ~ptid =
  let th = Chip.find_thread t.chip ~ptid in
  if Monitor.armed (Chip.monitor_table t.chip) (monitor_key th) = [] then
    t.report ~rule:"mwait"
      ~key:(Printf.sprintf "no-monitor:%d" ptid)
      ~message:
        (Printf.sprintf
           "ptid %d parked in mwait with no armed monitor address: nothing can \
            ever wake it except a force-stop"
           ptid)

let on_event t = function
  | Probe.State_change { ptid; from_; to_; reason } ->
    on_state_change t ~ptid ~from_ ~to_ ~reason
  | Probe.Translated { actor; vtid; table; used; outcome = `Hit } ->
    on_translated t ~actor ~vtid ~table ~used
  | Probe.Translated { outcome = `Miss; _ } -> ()
  | Probe.Reg_pull { actor; target; _ } ->
    on_reg_access t ~insn:"rpull" ~actor ~target
  | Probe.Reg_push { actor; target; _ } ->
    on_reg_access t ~insn:"rpush" ~actor ~target
  | Probe.Mwait_parked { ptid } -> on_parked t ~ptid
  | Probe.Mem_read _ | Probe.Mem_write _ | Probe.Start_edge _ | Probe.Stop_edge _
  | Probe.Monitor_armed _ | Probe.Mwait_woke _ | Probe.Invtid_issued _
  | Probe.Exception_raised _ | Probe.Mwait_timeout _ | Probe.Fault_injected _ ->
    ()

let check_stores t =
  for core = 0 to Chip.core_count t.chip - 1 do
    List.iter
      (fun issue ->
        t.report ~rule:"state-store"
          ~key:(Printf.sprintf "store:%d:%s" core issue)
          ~message:(Printf.sprintf "core %d state store: %s" core issue))
      (State_store.check (Chip.state_store t.chip core))
  done

(* Deadlock heuristic at end of run.  A Waiting thread is a deadlock
   candidate when every address it armed (a) has been written at least
   once (an idle worker parked on a fresh doorbell is just idle), and
   (b) has no external writer (DMA / dispatcher processes outside the
   tracked ISA could still ring it).  Among candidates, thread [w] waits
   on thread [v] when [v] is the only kind of agent that ever stored to
   one of [w]'s doorbells; candidates that cannot reach a cycle in this
   wait-for graph are pruned, and whatever remains is mutually stuck. *)
let check_deadlock t ~addr_writes =
  let waiting =
    List.filter (fun th -> Chip.state th = Ptid.Waiting) (Chip.thread_list t.chip)
  in
  let monitor = Chip.monitor_table t.chip in
  let info =
    List.map (fun th -> (Chip.ptid th, Monitor.armed monitor (monitor_key th))) waiting
  in
  let exempt (_, addrs) =
    addrs = []
    || List.exists
         (fun a ->
           let total, tracked = addr_writes a in
           total = 0 || total > tracked)
         addrs
  in
  let candidates = List.filter (fun x -> not (exempt x)) info in
  let cand = Hashtbl.create 8 in
  List.iter (fun (p, _) -> Hashtbl.replace cand p ()) candidates;
  let edges p addrs =
    List.concat_map t.writers addrs
    |> List.sort_uniq compare
    |> List.filter (fun v -> v <> p && Hashtbl.mem cand v)
  in
  let remaining = ref candidates in
  let changed = ref true in
  while !changed do
    changed := false;
    let live = Hashtbl.create 8 in
    List.iter (fun (p, _) -> Hashtbl.replace live p ()) !remaining;
    remaining :=
      List.filter
        (fun (p, addrs) ->
          let keep = List.exists (fun v -> Hashtbl.mem live v) (edges p addrs) in
          if not keep then changed := true;
          keep)
        !remaining
  done;
  match !remaining with
  | [] -> ()
  | stuck ->
    let ids = List.map (fun (p, _) -> string_of_int p) stuck in
    let sim_note =
      match Sl_engine.Sim.stuck_summary (Chip.sim t.chip) with
      | Some s -> "; engine reports " ^ s
      | None -> ""
    in
    t.report ~rule:"deadlock"
      ~key:("deadlock:" ^ String.concat "," ids)
      ~message:
        (Printf.sprintf
           "mwait cycle: ptid(s) %s are all Waiting and each can only be woken \
            by a store from another Waiting member%s"
           (String.concat ", " ids) sim_note)

let finish t ~addr_writes =
  check_stores t;
  check_deadlock t ~addr_writes
