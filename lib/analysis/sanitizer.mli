(** Runtime invariant sanitizers over the probe stream.

    Rules checked while events flow:

    - {b lifecycle}: every [State_change] must be one of the five legal
      ptid transitions (Disabled→Runnable, Runnable→Disabled,
      Runnable→Waiting, Waiting→Runnable, Waiting→Disabled), and must
      depart from the state the sanitizer's own mirror last observed —
      divergence means some code mutated thread state without going
      through the chip's transition functions.  [rpull]/[rpush] must also
      target a mirrored-Disabled thread.
    - {b stale-tdt}: a TDT cache hit must agree with the authoritative
      in-memory table; disagreement means a table update was not followed
      by [invtid] and the hardware acted on a stale translation.
    - {b mwait}: a thread must not park with zero armed monitor
      addresses — nothing could ever wake it.

    Rules checked at {!finish} (and periodically, via {!check_stores}):

    - {b state-store}: per-core tier accounting invariants
      ({!Switchless.State_store.check}).
    - {b deadlock}: a cycle of [Waiting] threads whose armed doorbells
      were only ever written by other members of the cycle.  Threads
      parked on never-written or externally-written (DMA/dispatcher)
      doorbells are deliberately not flagged: an idle worker pool is not
      a deadlock.  The finding includes [Sl_engine.Sim.stuck_summary] so
      engine-level blocked processes are surfaced alongside. *)

open Switchless

type t

val create :
  chip:Chip.t ->
  report:(rule:string -> key:string -> message:string -> unit) ->
  writers:(Memory.addr -> int list) ->
  t
(** [writers addr] must return every ptid that performed a tracked store
    to [addr] (the race detector already knows; see
    {!Race_detector.writers}). *)

val on_event : t -> Probe.event -> unit

val check_stores : t -> unit
(** Audit every core's state store now. *)

val finish : t -> addr_writes:(Memory.addr -> int * int) -> unit
(** End-of-run checks.  [addr_writes addr] is [(total, tracked)] store
    counts for the address — [total > tracked] means some writes came
    from outside the tracked ISA (DMA, device models, test harnesses). *)
