type issue = { file : string; line : int; rule : string; message : string }

let to_string i = Printf.sprintf "%s:%d: [%s] %s" i.file i.line i.rule i.message

(* Tokens that make a simulation run depend on the host environment. *)
let determinism_banned =
  [
    "Random.self_init";
    "Unix.gettimeofday";
    "Unix.time";
    "Unix.localtime";
    "Unix.gmtime";
    "Sys.time";
  ]

(* Direct terminal output; library code must return or format data
   instead, so experiment output stays under bin/bench control. *)
let print_banned =
  [
    "print_string";
    "print_endline";
    "print_newline";
    "print_int";
    "print_char";
    "print_float";
    "print_bytes";
    "prerr_string";
    "prerr_endline";
    "prerr_newline";
    "Printf.printf";
    "Printf.eprintf";
    "Format.printf";
    "Format.eprintf";
  ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Blank out comments, string literals and char literals (newlines kept,
   so line numbers survive).  This is what lets the banned-token tables
   above live in this very file without tripping the lint on itself. *)
let strip src =
  let n = String.length src in
  let out = Bytes.of_string src in
  let blank i = if Bytes.get out i <> '\n' then Bytes.set out i ' ' in
  let i = ref 0 in
  let comment_depth = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if !comment_depth > 0 then begin
      if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
        blank !i; blank (!i + 1); incr comment_depth; i := !i + 2
      end
      else if c = '*' && !i + 1 < n && src.[!i + 1] = ')' then begin
        blank !i; blank (!i + 1); decr comment_depth; i := !i + 2
      end
      else begin blank !i; incr i end
    end
    else if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
      blank !i; blank (!i + 1); comment_depth := 1; i := !i + 2
    end
    else if c = '"' then begin
      blank !i; incr i;
      let closed = ref false in
      while (not !closed) && !i < n do
        (if src.[!i] = '\\' && !i + 1 < n then begin blank !i; blank (!i + 1); i := !i + 1 end
         else if src.[!i] = '"' then closed := true
         else blank !i);
        incr i
      done
    end
    else if c = '\'' && !i + 2 < n
            && (src.[!i + 2] = '\'' || (src.[!i + 1] = '\\' && !i + 3 < n && src.[!i + 3] = '\''))
    then begin
      (* A char literal ('x' or '\x'); primes in identifiers fall through. *)
      let stop = if src.[!i + 2] = '\'' then !i + 2 else !i + 3 in
      for j = !i to stop do blank j done;
      i := stop + 1
    end
    else incr i
  done;
  Bytes.to_string out

let is_ident = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '\'' -> true
  | _ -> false

(* [token] occurs at [pos] as a standalone (possibly module-qualified)
   name: not embedded in a longer identifier on either side.  A leading
   dot is deliberately allowed so [Stdlib.print_string] is caught. *)
let token_at line token pos =
  let tn = String.length token in
  (pos = 0 || not (is_ident line.[pos - 1]))
  && (pos + tn >= String.length line || not (is_ident line.[pos + tn]))

let find_token line token =
  let tn = String.length token and n = String.length line in
  let rec go from_ =
    if from_ + tn > n then None
    else
      match String.index_from_opt line from_ token.[0] with
      | None -> None
      | Some pos ->
        if pos + tn <= n && String.sub line pos tn = token && token_at line token pos
        then Some pos
        else go (pos + 1)
  in
  go 0

(* --- blanket exception swallowing ---------------------------------------- *)

(* [try ... with _ ->] silently eats every failure — including the
   sanitizer assertions and engine invariant violations this library
   exists to surface; handlers must name the exceptions they expect.
   Token-level scan over the stripped source: a stack of open
   [try]/[match]/[{] distinguishes a [try]'s handler from an ordinary
   [match] case or a record-update [with], and only a handler whose
   {e first} pattern is the bare wildcard is reported (a trailing
   [| _ ->] after named exceptions is a deliberate catch-all). *)

type tok = { text : string; tline : int }

let tokenize src =
  let toks = ref [] in
  let line = ref 1 in
  let n = String.length src in
  let i = ref 0 in
  let add text = toks := { text; tline = !line } :: !toks in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin incr line; incr i end
    else if is_ident c then begin
      let j = ref !i in
      while !j < n && is_ident src.[!j] do incr j done;
      add (String.sub src !i (!j - !i));
      i := !j
    end
    else if c = '-' && !i + 1 < n && src.[!i + 1] = '>' then begin
      add "->";
      i := !i + 2
    end
    else begin
      (match c with '{' | '}' | '|' -> add (String.make 1 c) | _ -> ());
      incr i
    end
  done;
  List.rev !toks

let scan_catches ~file stripped =
  let issues = ref [] in
  let stack = ref [] in
  let report tline =
    issues :=
      {
        file;
        line = tline;
        rule = "no-blanket-catch";
        message =
          "try ... with _ -> swallows every exception (including sanitizer \
           assertions); match the exceptions you expect by name";
      }
      :: !issues
  in
  let rec go = function
    | [] -> ()
    | { text = "try"; _ } :: rest ->
      stack := `Try :: !stack;
      go rest
    | { text = "match"; _ } :: rest ->
      stack := `Match :: !stack;
      go rest
    | { text = "{"; _ } :: rest ->
      stack := `Brace :: !stack;
      go rest
    | { text = "}"; _ } :: rest ->
      (match !stack with `Brace :: tl -> stack := tl | _ -> ());
      go rest
    | { text = "with"; tline } :: rest ->
      (match !stack with
      | `Brace :: _ | [] -> ()  (* record update or module-type constraint *)
      | top :: tl ->
        stack := tl;
        if top = `Try then begin
          let arm = match rest with { text = "|"; _ } :: r -> r | r -> r in
          match arm with
          | { text = "_"; _ } :: { text = "->"; _ } :: _ -> report tline
          | _ -> ()
        end);
      go rest
    | _ :: rest -> go rest
  in
  go (tokenize stripped);
  List.rev !issues

(* Token rules over an already-stripped source: {!strip} runs exactly
   once per file, here in the caller, and both the line rules and the
   catch scanner reuse the same blanked buffer. *)
let scan_stripped ~file ~check_prints stripped =
  let issues = ref [] in
  let lines = String.split_on_char '\n' stripped in
  List.iteri
    (fun idx line ->
      let check rule tokens message =
        List.iter
          (fun token ->
            match find_token line token with
            | None -> ()
            | Some _ ->
              issues :=
                { file; line = idx + 1; rule; message = message token } :: !issues)
          tokens
      in
      check "determinism" determinism_banned (fun tok ->
          Printf.sprintf
            "%s depends on the host clock/entropy and breaks simulation \
             determinism"
            tok);
      if check_prints then
        check "no-print" print_banned (fun tok ->
            Printf.sprintf
              "%s writes to the terminal from library code; return data or \
               take a formatter instead"
              tok))
    lines;
  List.rev !issues @ scan_catches ~file stripped

let scan_file ?(check_prints = true) file =
  scan_stripped ~file ~check_prints (strip (read_file file))

let rec walk dir =
  if Filename.basename dir = "_build" || Filename.basename dir = ".git" then []
  else
    Sys.readdir dir |> Array.to_list |> List.sort compare
    |> List.concat_map (fun entry ->
           let path = Filename.concat dir entry in
           if Sys.is_directory path then walk path else [ path ])

(* The tree scan now owns only the one rule that needs the file system
   rather than the typedtree: .mli presence.  The determinism/print/
   blanket-catch rules moved to the typed layer (lib/staticcheck), which
   matches resolved identifiers instead of tokens; {!scan_file} keeps
   the token rules for targeted scans and for testing the tokenizer. *)
let scan_tree root =
  let files = walk root in
  List.concat_map
    (fun path ->
      if Filename.check_suffix path ".ml" && not (Sys.file_exists (path ^ "i"))
      then
        [
          {
            file = path;
            line = 1;
            rule = "missing-mli";
            message =
              "library module has no interface file; add a .mli so the \
               public surface is explicit";
          };
        ]
      else [])
    files
