(** Determinism and style lint for library sources.

    Static rules that protect the reproduction:

    - {b determinism}: no [Random.self_init], [Unix.gettimeofday],
      [Unix.time]/[localtime]/[gmtime] or [Sys.time] anywhere under the
      scanned root — simulated experiments must not read the host clock
      or entropy, or runs stop being replayable.
    - {b no-print}: no [print_*]/[prerr_*]/[Printf.printf]/
      [Format.printf] outside the terminal-facing [util] directory;
      library code returns data or takes a formatter.
    - {b no-blanket-catch}: no [try ... with _ ->]; a handler must name
      the exceptions it expects, or every failure — sanitizer assertions
      included — is silently swallowed.  A [match]'s wildcard case, a
      record-update [with], and a catch-all arm {e after} named
      exceptions are all fine.
    - {b missing-mli}: every [.ml] has a matching [.mli].

    Matching is token-based on source with comments, string literals and
    char literals blanked out, so a banned name in a doc comment (or in
    this module's own tables) does not trip the rule, while
    [Stdlib.print_string] does and [Format.pp_print_string] does not.

    The [lint] executable in [bin/] runs {!scan_tree} over [lib/] as part
    of [dune runtest]. *)

type issue = { file : string; line : int; rule : string; message : string }

val to_string : issue -> string
(** ["file:line: [rule] message"]. *)

val scan_file : ?check_prints:bool -> string -> issue list
(** Token rules on one file ([check_prints] defaults to [true]; the
    missing-mli rule only applies through {!scan_tree}). *)

val scan_tree : string -> issue list
(** Recursively scan every [.ml] under the root (skipping [_build] and
    [.git]), in deterministic (sorted) order. *)
