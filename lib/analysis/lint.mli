(** Source-level lint for library sources.

    Since the typed static layer landed (lib/staticcheck, surfaced as
    [switchless-sim check]), this module owns only what genuinely needs
    the file system rather than the typedtree:

    - {b missing-mli}: every [.ml] under the scanned root has a matching
      [.mli] — the one rule {!scan_tree} still applies.

    The token rules remain available through {!scan_file} for targeted
    scans and for testing the tokenizer, but the tree-wide
    determinism/print/blanket-catch enforcement now happens on resolved
    identifiers in [Sl_staticcheck.Purity]:

    - {b determinism}: no [Random.self_init], [Unix.gettimeofday],
      [Unix.time]/[localtime]/[gmtime] or [Sys.time] — simulated
      experiments must not read the host clock or entropy.
    - {b no-print}: no [print_*]/[prerr_*]/[Printf.printf]/
      [Format.printf]; library code returns data or takes a formatter.
    - {b no-blanket-catch}: no [try ... with _ ->]; a handler must name
      the exceptions it expects.  A [match]'s wildcard case, a
      record-update [with], and a catch-all arm {e after} named
      exceptions are all fine.

    Token matching works on source with comments, string literals and
    char literals blanked out — one {!strip} pass per file, shared by
    every rule — so a banned name in a doc comment (or in this module's
    own tables) does not trip a rule, while [Stdlib.print_string] does
    and [Format.pp_print_string] does not.

    The [lint] executable in [bin/] runs {!scan_tree} over [lib/] as
    part of [dune runtest]; the [check] alias runs the typed layer. *)

type issue = { file : string; line : int; rule : string; message : string }

val to_string : issue -> string
(** ["file:line: [rule] message"]. *)

val strip : string -> string
(** Blank comments (nested included), string literals and char literals,
    preserving newlines so line numbers survive.  Exposed so the
    blanking pass — run exactly once per file — can be regression-tested
    directly. *)

val scan_file : ?check_prints:bool -> string -> issue list
(** Token rules on one file: one {!strip}, then the line rules and the
    catch scanner over the same blanked buffer ([check_prints] defaults
    to [true]). *)

val scan_tree : string -> issue list
(** Recursively scan every [.ml] under the root (skipping [_build] and
    [.git]) for a matching [.mli], in deterministic (sorted) order. *)
