(** Sparse vector clocks over ptids.

    The race detector keeps one clock per hardware thread; entries absent
    from the table are zero.  Clocks only ever grow, so [e <= get c i] is
    the happens-before test for an access with epoch [e] performed by
    thread [i]. *)

type t

val create : unit -> t
(** The zero clock. *)

val get : t -> int -> int
val tick : t -> int -> unit

val copy : t -> t
(** Snapshot, for release operations (the source keeps evolving). *)

val merge : into:t -> t -> unit
(** Pointwise maximum, for acquire operations. *)

val to_list : t -> (int * int) list
(** Non-zero components, sorted by ptid. *)

val pp : Format.formatter -> t -> unit
