type finding = {
  rule : string;
  key : string;
  time : int;
  message : string;
  context : string list;
}

let pp ppf f =
  Format.fprintf ppf "@[<v 2>[%s] t=%d %s" f.rule f.time f.message;
  List.iter (fun line -> Format.fprintf ppf "@,| %s" line) f.context;
  Format.fprintf ppf "@]"

let summary findings =
  let by_rule = Hashtbl.create 8 in
  List.iter
    (fun f ->
      Hashtbl.replace by_rule f.rule
        (1 + Option.value ~default:0 (Hashtbl.find_opt by_rule f.rule)))
    findings;
  let parts =
    Hashtbl.fold (fun rule n acc -> (rule, n) :: acc) by_rule []
    |> List.sort compare
    |> List.map (fun (rule, n) -> Printf.sprintf "%s: %d" rule n)
  in
  match parts with
  | [] -> "no findings"
  | parts ->
    Printf.sprintf "%d finding(s) (%s)" (List.length findings)
      (String.concat ", " parts)
