type t = (int, int) Hashtbl.t

let create () = Hashtbl.create 8

let get t i = Option.value ~default:0 (Hashtbl.find_opt t i)

let tick t i = Hashtbl.replace t i (get t i + 1)

let copy = Hashtbl.copy

let merge ~into src =
  Hashtbl.iter
    (fun i v -> if v > get into i then Hashtbl.replace into i v)
    src

let to_list t =
  Hashtbl.fold (fun i v acc -> (i, v) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (i, v) -> Format.fprintf ppf "%d:%d" i v))
    (to_list t)
