(** Vector-clock data-race detection over simulated memory.

    Every tracked access ({!Switchless.Chip.load}/[store]) is an event;
    happens-before edges come from the paper's inter-thread instructions:

    - [start]: the actor's history transfers to the target (the target's
      subsequent execution is ordered after everything the actor did
      before starting it);
    - [stop]: the target's history transfers to the actor (a successful
      stop means the actor observes the target quiesced);
    - [rpull]: target → actor (reading a stopped thread's registers);
    - [rpush]: actor → target (writing them before a restart);
    - [mwait] wakeup: the clock of the store that triggered the wake
      transfers to the waiter, even though the waiter never loads the
      doorbell word.

    Two models are available:

    - {b hardware-coherent} (default, [check_reads = false]): a load also
      acquires the clock of the word's last writer — word-granular
      coherence, under which single-writer polling loops (e.g. the
      SplitX-style shared-memory hypervisor channel) are legitimately
      ordered.  Only unordered {e write-write} conflicts are reported.
    - {b strict} ([check_reads = true]): TSan-style; loads acquire
      nothing, and unordered read-write pairs are reported too.  Useful
      for models that are supposed to communicate only through monitor
      wakeups and thread lifecycle edges.

    Known limitation: synchronization constructed at the engine level
    ([Sl_engine.Semaphore]/[Mailbox]/[Ivar] used directly by OS models,
    e.g. the [Hw_channel] client-side lock) is invisible at ptid level
    and is {e not} credited with edges; workloads serialized only by such
    primitives should run under the default model. *)

open Switchless

type t

val create :
  check_reads:bool ->
  now:(unit -> Sl_engine.Sim.Time.t) ->
  report:(rule:string -> key:string -> message:string -> unit) ->
  t
(** [now] supplies simulated time for finding messages; [report] receives
    each finding (deduplication is the caller's job, via [key]). *)

val on_event : t -> Probe.event -> unit

val writers : t -> Memory.addr -> int list
(** Every ptid that ever performed a tracked store to [addr] (sorted).
    The deadlock sanitizer uses this to build wait-for edges. *)
