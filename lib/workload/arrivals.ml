type t =
  | Stationary of Sl_util.Dist.t
  | Mmpp of { rates : float array; mean_dwell : float array }

let poisson ~rate_per_kcycle =
  if rate_per_kcycle <= 0.0 then
    invalid_arg "Arrivals.poisson: rate must be positive";
  Stationary (Sl_util.Dist.Exponential (1000.0 /. rate_per_kcycle))

let bursty ~rate_per_kcycle ~amplitude ~mean_dwell =
  if rate_per_kcycle <= 0.0 then
    invalid_arg "Arrivals.bursty: rate must be positive";
  if amplitude < 0.0 || amplitude >= 1.0 then
    invalid_arg "Arrivals.bursty: amplitude must be in [0, 1)";
  if mean_dwell <= 0.0 then
    invalid_arg "Arrivals.bursty: mean_dwell must be positive";
  Mmpp
    {
      rates =
        [|
          (1.0 +. amplitude) *. rate_per_kcycle;
          (1.0 -. amplitude) *. rate_per_kcycle;
        |];
      mean_dwell = [| mean_dwell; mean_dwell |];
    }

let validate = function
  | Stationary d ->
    if Sl_util.Dist.mean d <= 0.0 then
      invalid_arg "Arrivals: stationary inter-arrival mean must be positive"
  | Mmpp { rates; mean_dwell } ->
    if Array.length rates = 0 || Array.length rates <> Array.length mean_dwell
    then invalid_arg "Arrivals.Mmpp: rates and mean_dwell must match, non-empty";
    Array.iter
      (fun r -> if r <= 0.0 then invalid_arg "Arrivals.Mmpp: rates must be positive")
      rates;
    Array.iter
      (fun d ->
        if d <= 0.0 then invalid_arg "Arrivals.Mmpp: dwell times must be positive")
      mean_dwell

let mean_rate_per_kcycle = function
  | Stationary d -> 1000.0 /. Sl_util.Dist.mean d
  | Mmpp { rates; mean_dwell } ->
    (* Dwell-weighted stationary mean of the modulating chain. *)
    let weighted = ref 0.0 and total = ref 0.0 in
    Array.iteri
      (fun i r ->
        weighted := !weighted +. (r *. mean_dwell.(i));
        total := !total +. mean_dwell.(i))
      rates;
    !weighted /. !total

let sampler t rng =
  validate t;
  match t with
  | Stationary d ->
    fun () ->
      let gap = int_of_float (Sl_util.Dist.sample d rng) in
      if gap < 1 then 1 else gap
  | Mmpp { rates; mean_dwell } ->
    let n = Array.length rates in
    let gap_dist = Array.map (fun r -> Sl_util.Dist.Exponential (1000.0 /. r)) rates in
    let dwell_dist = Array.map (fun d -> Sl_util.Dist.Exponential d) mean_dwell in
    let state = ref 0 in
    let remaining = ref (Sl_util.Dist.sample dwell_dist.(0) rng) in
    fun () ->
      (* Draw the time to the next arrival.  When the candidate gap
         overruns the current state's dwell period, the elapsed dwell is
         consumed arrival-free and the draw restarts in the next state —
         valid because exponential inter-arrivals are memoryless. *)
      let rec go acc =
        let gap = Sl_util.Dist.sample gap_dist.(!state) rng in
        if gap <= !remaining then begin
          remaining := !remaining -. gap;
          acc +. gap
        end
        else begin
          let consumed = !remaining in
          state := (!state + 1) mod n;
          remaining := Sl_util.Dist.sample dwell_dist.(!state) rng;
          go (acc +. consumed)
        end
      in
      let gap = int_of_float (go 0.0) in
      if gap < 1 then 1 else gap
