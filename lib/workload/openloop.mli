(** Open-loop request generation.

    Requests arrive on their own schedule regardless of whether the system
    keeps up — the methodology of the serving papers this work builds on
    (Shinjuku, Shenango, ZygOS): closed-loop generators hide queueing
    collapse; open-loop ones expose it. *)

type request = {
  req_id : int;
  arrival : Sl_engine.Sim.Time.t;  (** Cycle at which the request entered the system. *)
  service_cycles : Sl_engine.Sim.Time.t;  (** Work the request demands. *)
}

val run :
  Sl_engine.Sim.t -> Sl_util.Rng.t -> interarrival:Sl_util.Dist.t ->
  service:Sl_util.Dist.t -> count:int -> sink:(request -> unit) -> unit
(** Spawn a generator process emitting [count] requests; [sink] is invoked
    from the generator process at each arrival instant (it may fork, send
    to a mailbox, inject into a device, …).  Inter-arrival gaps and
    service demands are sampled per request (clamped to ≥ 1 cycle and ≥ 0
    cycles respectively).  Equivalent to {!run_arrivals} with
    [Arrivals.Stationary interarrival] — same RNG stream, same schedule. *)

val run_arrivals :
  Sl_engine.Sim.t -> Sl_util.Rng.t -> arrivals:Arrivals.t ->
  service:Sl_util.Dist.t -> count:int -> sink:(request -> unit) -> unit
(** {!run} generalized over the arrival process: gaps come from
    {!Arrivals.sampler} (Poisson, bursty MMPP, …), service demands are
    drawn from [service] on the same RNG stream, one gap then one demand
    per request. *)

val poisson : rate_per_kcycle:float -> Sl_util.Dist.t
(** Exponential inter-arrivals for the given mean rate (requests per 1000
    cycles) — the usual M/G arrival side. *)

val utilization :
  rate_per_kcycle:float -> mean_service:float -> servers:float -> float
(** Offered load ρ = λ·E\[S\] / m, for labelling sweep axes. *)
