module Sim = Sl_engine.Sim

type request = { req_id : int; arrival : int; service_cycles : int }

let run_arrivals sim rng ~arrivals ~service ~count ~sink =
  Sim.spawn sim (fun () ->
      let next_gap = Arrivals.sampler arrivals rng in
      for req_id = 0 to count - 1 do
        Sim.delay (next_gap ());
        let service_cycles = int_of_float (Sl_util.Dist.sample service rng) in
        let service_cycles =
          if service_cycles < 0 then 0 else service_cycles
        in
        sink { req_id; arrival = Sim.now (); service_cycles }
      done)

let run sim rng ~interarrival ~service ~count ~sink =
  run_arrivals sim rng ~arrivals:(Arrivals.Stationary interarrival) ~service
    ~count ~sink

let poisson ~rate_per_kcycle =
  if rate_per_kcycle <= 0.0 then invalid_arg "Openloop.poisson: rate must be positive";
  Sl_util.Dist.Exponential (1000.0 /. rate_per_kcycle)

let utilization ~rate_per_kcycle ~mean_service ~servers =
  rate_per_kcycle /. 1000.0 *. mean_service /. servers
