module Sim = Sl_engine.Sim

type request = { req_id : int; arrival : int; service_cycles : int }

let run sim rng ~interarrival ~service ~count ~sink =
  Sim.spawn sim (fun () ->
      for req_id = 0 to count - 1 do
        let gap = int_of_float (Sl_util.Dist.sample interarrival rng) in
        let gap = if gap < 1 then 1 else gap in
        Sim.delay gap;
        let service_cycles = int_of_float (Sl_util.Dist.sample service rng) in
        let service_cycles =
          if service_cycles < 0 then 0 else service_cycles
        in
        sink { req_id; arrival = Sim.now (); service_cycles }
      done)

let poisson ~rate_per_kcycle =
  if rate_per_kcycle <= 0.0 then invalid_arg "Openloop.poisson: rate must be positive";
  Sl_util.Dist.Exponential (1000.0 /. rate_per_kcycle)

let utilization ~rate_per_kcycle ~mean_service ~servers =
  rate_per_kcycle /. 1000.0 *. mean_service /. servers
