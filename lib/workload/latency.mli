(** SLO-aware latency accounting for load experiments.

    A thin recorder around {!Sl_util.Histogram} that every serving design
    updates once per completed request with its sojourn time
    (arrival → processing complete, in cycles).  On top of the HDR-style
    quantiles it keeps the two numbers a load sweep actually ranks
    designs by: how many completions blew the latency SLO, and the
    goodput — SLO-compliant completions per 1000 cycles — that survives
    as offered load crosses the saturation knee. *)

type t

type summary = {
  count : int;  (** Completions recorded. *)
  mean : float;
  p50 : int;
  p99 : int;
  p999 : int;
  max_v : int;
  slo : int;  (** The SLO this recorder was created with (cycles). *)
  slo_miss : int;  (** Completions with sojourn > [slo]. *)
  goodput_per_kcycle : float;
      (** SLO-compliant completions per 1000 cycles of elapsed time. *)
}

val create : ?precision:int -> slo:int -> unit -> t
(** [create ~slo ()] makes an empty recorder with the given latency SLO in
    cycles.  [precision] is forwarded to {!Sl_util.Histogram.create}. *)

val record : t -> int -> unit
(** [record t sojourn] adds one completion; counts an SLO miss when
    [sojourn > slo]. *)

val hist : t -> Sl_util.Histogram.t
val count : t -> int
val slo : t -> int
val slo_miss : t -> int

val met : t -> int
(** Completions within the SLO ([count - slo_miss]). *)

val summarize : t -> elapsed:int -> summary
(** Snapshot quantiles and goodput against [elapsed] simulated cycles. *)

val pp_summary : Format.formatter -> summary -> unit
(** One-line rendering for experiment tables. *)
