module Histogram = Sl_util.Histogram

type t = {
  hist : Histogram.t;
  slo : int;
  mutable slo_miss : int;
}

type summary = {
  count : int;
  mean : float;
  p50 : int;
  p99 : int;
  p999 : int;
  max_v : int;
  slo : int;
  slo_miss : int;
  goodput_per_kcycle : float;
}

let create ?precision ~slo () =
  if slo < 0 then invalid_arg "Latency.create: slo must be non-negative";
  { hist = Histogram.create ?precision (); slo; slo_miss = 0 }

let record t sojourn =
  Histogram.record t.hist sojourn;
  if sojourn > t.slo then t.slo_miss <- t.slo_miss + 1

let hist t = t.hist
let count t = Histogram.count t.hist
let slo (t : t) = t.slo
let slo_miss (t : t) = t.slo_miss
let met t = Histogram.count t.hist - t.slo_miss

let summarize t ~elapsed =
  {
    count = Histogram.count t.hist;
    mean = Histogram.mean t.hist;
    p50 = Histogram.quantile t.hist 0.5;
    p99 = Histogram.quantile t.hist 0.99;
    p999 = Histogram.quantile t.hist 0.999;
    max_v = Histogram.max_value t.hist;
    slo = t.slo;
    slo_miss = t.slo_miss;
    goodput_per_kcycle =
      (if elapsed <= 0 then 0.0
       else float_of_int (met t) *. 1000.0 /. float_of_int elapsed);
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.0f p50=%d p99=%d p999=%d max=%d slo_miss=%d goodput=%.3f/kcyc"
    s.count s.mean s.p50 s.p99 s.p999 s.max_v s.slo_miss s.goodput_per_kcycle
