module Sim = Sl_engine.Sim
module Mailbox = Sl_engine.Mailbox
module Dist = Sl_util.Dist
module Rng = Sl_util.Rng

type t = {
  count : int;
  mutable issued : int;
  mutable completed : int;
  mutable timed_out : int;
  mutable in_flight : int;
  lat : Latency.t;
}

let issued t = t.issued
let completed t = t.completed
let timed_out t = t.timed_out
let in_flight t = t.in_flight
let latency t = t.lat

let client_loop t ~think ~service ~timeout ~submit crng =
  let rec go () =
    if t.issued < t.count then begin
      let req_id = t.issued in
      t.issued <- t.issued + 1;
      let gap = int_of_float (Dist.sample think crng) in
      Sim.delay (if gap < 0 then 0 else gap);
      let s = int_of_float (Dist.sample service crng) in
      let service_cycles = if s < 0 then 0 else s in
      let arrival = Sim.now () in
      let done_mb = Mailbox.create () in
      t.in_flight <- t.in_flight + 1;
      submit
        { Openloop.req_id; arrival; service_cycles }
        ~complete:(fun () -> Mailbox.send done_mb ());
      let finished =
        match timeout with
        | None ->
          Mailbox.recv done_mb;
          true
        | Some within -> Option.is_some (Mailbox.recv_for done_mb ~within)
      in
      t.in_flight <- t.in_flight - 1;
      if finished then begin
        t.completed <- t.completed + 1;
        Latency.record t.lat (Sim.now () - arrival)
      end
      else t.timed_out <- t.timed_out + 1;
      go ()
    end
  in
  go ()

let start ?timeout ?(slo = max_int) sim rng ~clients ~think ~service ~count
    ~submit =
  if clients <= 0 then invalid_arg "Closedloop.start: clients must be positive";
  if count < 0 then invalid_arg "Closedloop.start: count must be non-negative";
  let t =
    {
      count;
      issued = 0;
      completed = 0;
      timed_out = 0;
      in_flight = 0;
      lat = Latency.create ~slo ();
    }
  in
  for _ = 1 to clients do
    (* Each client draws from its own split stream, so think/service
       sequences do not depend on how the clients interleave. *)
    let crng = Rng.split rng in
    Sim.spawn sim (fun () ->
        client_loop t ~think ~service ~timeout ~submit crng)
  done;
  t
