(** Arrival processes for load generation.

    Two families, both driven by deterministic SplitMix64 streams:

    - {!Stationary}: independent, identically-distributed inter-arrival
      gaps — [Stationary (Exponential m)] is the Poisson process every
      M/G queueing argument assumes.
    - {!Mmpp}: a Markov-modulated Poisson process.  A background chain
      cycles through states; state [i] emits Poisson arrivals at
      [rates.(i)] (per 1000 cycles) and holds for an exponentially
      distributed dwell with mean [mean_dwell.(i)] cycles.  Burstiness at
      a fixed mean rate — the arrival-side analogue of the service-time
      CV² axis, and the regime where tail latencies diverge from the
      steady-state Poisson prediction. *)

type t =
  | Stationary of Sl_util.Dist.t  (** i.i.d. gaps drawn from the distribution. *)
  | Mmpp of { rates : float array; mean_dwell : float array }
      (** State [i]: Poisson at [rates.(i)]/kcycle for an exponential
          dwell of mean [mean_dwell.(i)] cycles, then advance (cyclically)
          to state [i+1]. *)

val poisson : rate_per_kcycle:float -> t
(** Poisson arrivals at the given mean rate (requests per 1000 cycles). *)

val bursty : rate_per_kcycle:float -> amplitude:float -> mean_dwell:float -> t
(** Two-state MMPP with the given {e mean} rate: alternating high/low
    phases at [(1 ± amplitude) × rate], equal mean dwell times.
    [amplitude] in [\[0, 1)]; [0] degenerates to (phase-modulated)
    Poisson at the mean rate. *)

val mean_rate_per_kcycle : t -> float
(** Long-run arrival rate (dwell-weighted across MMPP states), for
    labelling sweep axes and offered-load arithmetic. *)

val sampler : t -> Sl_util.Rng.t -> unit -> int
(** [sampler t rng] returns a stateful gap generator: each call draws the
    next inter-arrival gap in cycles (clamped to ≥ 1).  All state
    (including the MMPP modulating chain) advances only through [rng], so
    equal seeds reproduce equal arrival sequences.  For
    [Stationary d] the draw is exactly [Dist.sample d] truncated to int —
    the same stream {!Openloop.run} consumes. *)
