(** Closed-loop request generation.

    A fixed population of clients, each cycling think → submit → wait for
    the response.  The offered rate self-throttles: a saturated server
    slows the clients down instead of building an unbounded queue, which
    is precisely why closed-loop results {e hide} queueing collapse and
    open-loop ones ({!Openloop}) expose it — E16 runs both on the same
    serving designs to demonstrate the difference, and the chaos suite
    uses the per-request [?timeout] to keep clients live when injected
    faults eat a request entirely. *)

type t
(** Shared progress state for one client population. *)

val start :
  ?timeout:Sl_engine.Sim.Time.t ->
  ?slo:int ->
  Sl_engine.Sim.t -> Sl_util.Rng.t -> clients:int -> think:Sl_util.Dist.t ->
  service:Sl_util.Dist.t -> count:int ->
  submit:(Openloop.request -> complete:(unit -> unit) -> unit) -> t
(** [start sim rng ~clients ~think ~service ~count ~submit] spawns
    [clients] client processes that collectively issue [count] requests
    (a shared ticket counter; each request numbered in issue order).  Per
    request a client draws a think gap and a service demand from its own
    {!Sl_util.Rng.split} stream (clamped to ≥ 0), delays the think time,
    then calls [submit req ~complete] and blocks until the serving side
    invokes [complete] — or for at most [timeout] cycles when given, after
    which the request is counted {!timed_out} and the client moves on (a
    late [complete] is then a no-op).  Sojourns of completed requests are
    recorded against [slo] (default: effectively no SLO). *)

val issued : t -> int
val completed : t -> int
val timed_out : t -> int

val in_flight : t -> int
(** Requests submitted but neither completed nor timed out yet; [0] after
    a clean drain. *)

val latency : t -> Latency.t
(** Sojourn recorder over completed requests (submit → complete). *)
