module Sim = Sl_engine.Sim
module Ivar = Sl_engine.Ivar
module Chip = Switchless.Chip
module Isa = Switchless.Isa
module Memory = Switchless.Memory
module Params = Switchless.Params
module Smt_core = Switchless.Smt_core
module Histogram = Sl_util.Histogram
module Recovery = Sl_util.Recovery

type kind = Tas | Ticket | Mcs_spin | Mcs_mwait | Park_sw | Park_mwait

let all_kinds = [ Tas; Ticket; Mcs_spin; Mcs_mwait; Park_sw; Park_mwait ]

let kind_name = function
  | Tas -> "tas"
  | Ticket -> "ticket"
  | Mcs_spin -> "mcs.spin"
  | Mcs_mwait -> "mcs.mwait"
  | Park_sw -> "park.sw"
  | Park_mwait -> "park.mwait"

type event =
  | Join of int
  | Grant of int
  | Release of int
  | Park of int
  | Wake of int

(* Per-(lock, thread) state.  The qnode words [grant]/[next] live in
   simulated Memory; the rest is host-side bookkeeping.  [armed] caches
   "this thread has a monitor armed on this lock's wait word", and
   [armed_crashes] invalidates the cache across crash-stops (a crash
   clears the hardware monitor table, so the cached bit would otherwise
   turn the first post-restart park into a park-with-nothing-armed). *)
type slot = {
  th : Chip.thread;
  sptid : int;
  mutable count : int;
  mutable armed : bool;
  mutable armed_crashes : int;
  grant : Memory.addr;
  next : Memory.addr;
  mutable grant_seen : int;
}

type t = {
  chip : Chip.t;
  kind : kind;
  word : Memory.addr;
  serving : Memory.addr;
  patience : int option;
  spin_cap : int;
  on_event : (event -> unit) option;
  slots : (int, slot) Hashtbl.t;
  waiters : (slot * unit Ivar.t) Queue.t;
  mutable owner : int;
  mutable waiting : int;
  mutable handoff_t0 : int;
  mutable next_join : int;
  mutable next_grant : int;
  mutable acquires : int;
  mutable contended : int;
  mutable parks : int;
  mutable wakes : int;
  mutable fifo_dist_sum : int;
  mutable fifo_samples : int;
  handoff : Histogram.t;
}

let create ?patience ?(spin_cap = 2048) ?on_event chip kind =
  let m = Chip.memory chip in
  {
    chip;
    kind;
    word = Memory.alloc m 1;
    serving = Memory.alloc m 1;
    patience;
    spin_cap;
    on_event;
    slots = Hashtbl.create 64;
    waiters = Queue.create ();
    owner = -1;
    waiting = 0;
    handoff_t0 = -1;
    next_join = 0;
    next_grant = 0;
    acquires = 0;
    contended = 0;
    parks = 0;
    wakes = 0;
    fifo_dist_sum = 0;
    fifo_samples = 0;
    handoff = Histogram.create ();
  }

let kind t = t.kind
let word t = t.word
let owner t = t.owner

(* Event emission keeps the constructor allocation inside the [Some]
   branch so an uninstrumented lock allocates nothing per event. *)
let emit_join t p = match t.on_event with None -> () | Some f -> f (Join p)
let emit_grant t p = match t.on_event with None -> () | Some f -> f (Grant p)
let emit_release t p = match t.on_event with None -> () | Some f -> f (Release p)
let emit_park t p = match t.on_event with None -> () | Some f -> f (Park p)
let emit_wake t p = match t.on_event with None -> () | Some f -> f (Wake p)

let register t th =
  let m = Chip.memory t.chip in
  let s =
    {
      th;
      sptid = Chip.ptid th;
      count = 0;
      armed = false;
      armed_crashes = 0;
      grant = Memory.alloc m 1;
      next = Memory.alloc m 1;
      grant_seen = 0;
    }
  in
  Hashtbl.replace t.slots s.sptid s;
  s

let slot_of t th =
  match Hashtbl.find t.slots (Chip.ptid th) with
  | s -> s
  | exception Not_found -> register t th

(* Arm a monitor on [addr] unless this thread still has one armed from an
   earlier acquire.  A crash-stop since then cleared the hardware table,
   so the cache is keyed by the thread's crash count. *)
let ensure_armed s addr =
  let crashes = Chip.crash_count s.th in
  if (not s.armed) || s.armed_crashes <> crashes then begin
    if s.armed && s.armed_crashes <> crashes then Recovery.bump "sync.rearm";
    Isa.monitor s.th addr;
    s.armed <- true;
    s.armed_crashes <- crashes
  end

let note_join t s =
  let a = t.next_join in
  t.next_join <- a + 1;
  emit_join t s.sptid;
  a

let note_grant t s ~contended =
  t.owner <- s.sptid;
  t.acquires <- t.acquires + 1;
  s.count <- s.count + 1;
  if contended then t.contended <- t.contended + 1;
  if t.handoff_t0 >= 0 then begin
    Histogram.record t.handoff (Sim.now () - t.handoff_t0);
    t.handoff_t0 <- -1
  end;
  let g = t.next_grant in
  t.next_grant <- g + 1;
  g

let note_fifo t a g =
  t.fifo_dist_sum <- t.fifo_dist_sum + abs (g - a);
  t.fifo_samples <- t.fifo_samples + 1

let finish t s ~contended a =
  let g = note_grant t s ~contended in
  note_fifo t a g;
  emit_grant t s.sptid

(* Uncontended TAS / parking-lock acquire: one CAS plus integer
   bookkeeping.  The steady-state path allocates nothing — checked. *)
let fast_path_acquire t s =
  if Atomics.cas t.chip s.th t.word ~expect:0L ~desired:1L then begin
    let a = note_join t s in
    finish t s ~contended:false a;
    true
  end
  else false
[@@sl.zero_alloc]

(* TAS / parking-lock release: the store to the lock word is the wake. *)
let release_word t s =
  t.owner <- -1;
  emit_release t s.sptid;
  if t.waiting > 0 then t.handoff_t0 <- Sim.now ();
  Atomics.write t.chip s.th t.word 0L
[@@sl.zero_alloc]

(* --- test-and-set --- *)

let tas_slow t s =
  let a = note_join t s in
  t.waiting <- t.waiting + 1;
  let backoff = ref (Chip.params t.chip).Params.cas_cycles in
  let rec loop () =
    Isa.exec s.th ~kind:Smt_core.Poll !backoff;
    backoff := min t.spin_cap (!backoff * 2);
    if not (Atomics.cas t.chip s.th t.word ~expect:0L ~desired:1L) then loop ()
  in
  loop ();
  t.waiting <- t.waiting - 1;
  finish t s ~contended:true a

(* --- ticket --- *)

let ticket_acquire t s =
  let my = Int64.to_int (Atomics.fetch_add t.chip s.th t.word 1L) in
  let a = note_join t s in
  let cur = Int64.to_int (Atomics.read ~kind:Smt_core.Poll t.chip s.th t.serving) in
  if cur = my then finish t s ~contended:false a
  else begin
    t.waiting <- t.waiting + 1;
    let rec loop cur =
      if cur <> my then begin
        (* Backoff proportional to queue distance: a waiter k places back
           cannot be served for at least k critical sections. *)
        Isa.exec s.th ~kind:Smt_core.Poll (min t.spin_cap (max 16 ((my - cur) * 64)));
        loop (Int64.to_int (Atomics.read ~kind:Smt_core.Poll t.chip s.th t.serving))
      end
    in
    loop cur;
    t.waiting <- t.waiting - 1;
    finish t s ~contended:true a
  end

let ticket_release t s =
  t.owner <- -1;
  emit_release t s.sptid;
  if t.waiting > 0 then t.handoff_t0 <- Sim.now ();
  let cur = Atomics.read t.chip s.th t.serving in
  Atomics.write t.chip s.th t.serving (Int64.add cur 1L)

(* --- MCS queue --- *)

let mcs_wait_spin t s ~target =
  let backoff = ref 32 in
  while
    Int64.to_int (Atomics.read ~kind:Smt_core.Poll t.chip s.th s.grant) < target
  do
    Isa.exec s.th ~kind:Smt_core.Poll !backoff;
    backoff := min t.spin_cap (!backoff * 2)
  done

let mcs_wait_mwait t s ~target =
  while
    Int64.to_int (Atomics.read t.chip s.th s.grant) < target
  do
    t.parks <- t.parks + 1;
    emit_park t s.sptid;
    ensure_armed s s.grant;
    (match t.patience with
    | None -> ignore (Isa.mwait s.th : Memory.addr)
    | Some patience -> (
      match Isa.mwait_for s.th ~deadline:(Sim.now () + patience) with
      | Some _ -> ()
      | None -> Recovery.bump "sync.park_retry"));
    t.wakes <- t.wakes + 1;
    emit_wake t s.sptid
  done

let mcs_acquire ~spin t s =
  (* Reset our queue node while nobody can see it, and — in mwait mode —
     arm the monitor on our grant word BEFORE the tail swap publishes the
     node.  Arming after publishing would open a lost-wakeup window: the
     predecessor could grant between publish and arm, and the waiter
     would park forever on a wake that already happened. *)
  Atomics.write t.chip s.th s.next 0L;
  if not spin then ensure_armed s s.grant;
  let prev =
    Int64.to_int (Atomics.exchange t.chip s.th t.serving (Int64.of_int (s.sptid + 1)))
  in
  let a = note_join t s in
  if prev = 0 then finish t s ~contended:false a
  else begin
    t.waiting <- t.waiting + 1;
    let pred = Hashtbl.find t.slots (prev - 1) in
    Atomics.write t.chip s.th pred.next (Int64.of_int (s.sptid + 1));
    let target = s.grant_seen + 1 in
    if spin then mcs_wait_spin t s ~target else mcs_wait_mwait t s ~target;
    s.grant_seen <- target;
    t.waiting <- t.waiting - 1;
    finish t s ~contended:true a
  end

let mcs_handoff t s nxt =
  let succ = Hashtbl.find t.slots (nxt - 1) in
  t.handoff_t0 <- Sim.now ();
  let g = Atomics.read t.chip s.th succ.grant in
  (* The grant store is the wake when the successor parked in mwait. *)
  Atomics.write t.chip s.th succ.grant (Int64.add g 1L)

let mcs_release t s =
  t.owner <- -1;
  emit_release t s.sptid;
  let nxt = Int64.to_int (Atomics.read t.chip s.th s.next) in
  if nxt <> 0 then mcs_handoff t s nxt
  else if
    Atomics.cas t.chip s.th t.serving ~expect:(Int64.of_int (s.sptid + 1))
      ~desired:0L
  then ()
  else begin
    (* A successor swapped the tail but has not linked itself yet; it is
       one store away, so a brief poll is bounded. *)
    let rec wait_link () =
      let n = Int64.to_int (Atomics.read ~kind:Smt_core.Poll t.chip s.th s.next) in
      if n = 0 then begin
        Isa.exec s.th ~kind:Smt_core.Poll 8;
        wait_link ()
      end
      else n
    in
    mcs_handoff t s (wait_link ())
  end

(* --- parking (futex-on-mwait) --- *)

let park_slow t s =
  let a = note_join t s in
  t.waiting <- t.waiting + 1;
  let rec loop () =
    (* Arm before the CAS that decides to park: a release that lands
       after our failed CAS is latched by the armed monitor, so the
       subsequent mwait returns instead of missing it. *)
    ensure_armed s t.word;
    if not (Atomics.cas t.chip s.th t.word ~expect:0L ~desired:1L) then begin
      t.parks <- t.parks + 1;
      emit_park t s.sptid;
      (match t.patience with
      | None -> ignore (Isa.mwait s.th : Memory.addr)
      | Some patience -> (
        match Isa.mwait_for s.th ~deadline:(Sim.now () + patience) with
        | Some _ -> ()
        | None -> Recovery.bump "sync.park_retry"));
      t.wakes <- t.wakes + 1;
      emit_wake t s.sptid;
      loop ()
    end
  in
  loop ();
  t.waiting <- t.waiting - 1;
  finish t s ~contended:true a

(* --- software park/unpark baseline --- *)

let sw_block_tax t th =
  let p = Chip.params t.chip in
  let state_cycles =
    (Params.regstate_bytes p ~vector:false + p.Params.ctx_bytes_per_cycle - 1)
    / p.Params.ctx_bytes_per_cycle
  in
  Isa.exec th ~kind:Smt_core.Overhead
    (p.Params.sched_decision_cycles + p.Params.ctx_switch_fixed_cycles + state_cycles)

let sw_resume_tax t th =
  let p = Chip.params t.chip in
  let state_cycles =
    (Params.regstate_bytes p ~vector:false + p.Params.ctx_bytes_per_cycle - 1)
    / p.Params.ctx_bytes_per_cycle
  in
  Isa.exec th ~kind:Smt_core.Overhead
    (p.Params.ctx_switch_fixed_cycles + state_cycles + p.Params.cache_warmup_cycles)

let sw_acquire t s =
  (* The futex fast path still pays for its atomic. *)
  Isa.exec s.th ~kind:Smt_core.Overhead (Chip.params t.chip).Params.cas_cycles;
  let a = note_join t s in
  if t.owner = -1 && Queue.is_empty t.waiters then finish t s ~contended:false a
  else begin
    t.waiting <- t.waiting + 1;
    t.parks <- t.parks + 1;
    emit_park t s.sptid;
    let iv = Ivar.create () in
    Queue.push (s, iv) t.waiters;
    sw_block_tax t s.th;
    Ivar.read iv;
    (* Ownership was reserved for us by the releaser. *)
    t.wakes <- t.wakes + 1;
    emit_wake t s.sptid;
    sw_resume_tax t s.th;
    t.waiting <- t.waiting - 1;
    finish t s ~contended:true a
  end

let sw_release t s =
  emit_release t s.sptid;
  if Queue.is_empty t.waiters then t.owner <- -1
  else begin
    let succ, iv = Queue.pop t.waiters in
    t.handoff_t0 <- Sim.now ();
    (* Reserve ownership for the popped waiter so no barger can slip in
       between the wakeup IPI and the waiter actually running. *)
    t.owner <- succ.sptid;
    let p = Chip.params t.chip in
    Isa.exec s.th ~kind:Smt_core.Overhead
      (p.Params.sched_decision_cycles + p.Params.ipi_cycles);
    Ivar.fill iv ()
  end

(* --- public entry points --- *)

let acquire t th =
  let s = slot_of t th in
  match t.kind with
  | Tas -> if not (fast_path_acquire t s) then tas_slow t s
  | Park_mwait -> if not (fast_path_acquire t s) then park_slow t s
  | Ticket -> ticket_acquire t s
  | Mcs_spin -> mcs_acquire ~spin:true t s
  | Mcs_mwait -> mcs_acquire ~spin:false t s
  | Park_sw -> sw_acquire t s

let release t th =
  let s = slot_of t th in
  if t.owner <> s.sptid then
    invalid_arg "Sl_sync.Lock.release: caller does not hold the lock";
  match t.kind with
  | Tas | Park_mwait -> release_word t s
  | Ticket -> ticket_release t s
  | Mcs_spin | Mcs_mwait -> mcs_release t s
  | Park_sw -> sw_release t s

(* No exception handler on purpose: a crash-stop unwind must leave the
   lock exactly as the dead thread left it (held iff it died inside the
   critical section); the restart path re-acquires from scratch. *)
let with_lock t th f =
  acquire t th;
  let v = f () in
  release t th;
  v

type stats = {
  acquires : int;
  contended : int;
  parks : int;
  wakes : int;
  handoff : Histogram.t;
  fifo_distance_mean : float;
  counts : (int * int) list;
  max_count : int;
  min_count : int;
}

let stats t =
  let counts =
    Hashtbl.fold (fun p s acc -> (p, s.count) :: acc) t.slots []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let max_count = List.fold_left (fun m (_, c) -> max m c) 0 counts in
  let min_count =
    match counts with
    | [] -> 0
    | _ -> List.fold_left (fun m (_, c) -> min m c) max_int counts
  in
  {
    acquires = t.acquires;
    contended = t.contended;
    parks = t.parks;
    wakes = t.wakes;
    handoff = t.handoff;
    fifo_distance_mean =
      (if t.fifo_samples = 0 then 0.0
       else float_of_int t.fifo_dist_sum /. float_of_int t.fifo_samples);
    counts;
    max_count;
    min_count;
  }
