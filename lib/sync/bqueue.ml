module Chip = Switchless.Chip
module Memory = Switchless.Memory

type t = {
  chip : Chip.t;
  lk : Lock.t;
  not_full : Condvar.t;
  not_empty : Condvar.t;
  ring : Memory.addr;
  capacity : int;
  mutable head : int;
  mutable tail : int;
  mutable produced : int;
  mutable consumed : int;
}

let create ?(kind = Lock.Park_mwait) ?patience chip ~capacity =
  if capacity <= 0 then invalid_arg "Sl_sync.Bqueue.create: capacity must be positive";
  {
    chip;
    lk = Lock.create ?patience chip kind;
    not_full = Condvar.create chip;
    not_empty = Condvar.create chip;
    ring = Memory.alloc (Chip.memory chip) capacity;
    capacity;
    head = 0;
    tail = 0;
    produced = 0;
    consumed = 0;
  }

let lock t = t.lk
let length t = t.produced - t.consumed
let produced t = t.produced
let consumed t = t.consumed

let put t th v =
  Lock.acquire t.lk th;
  while length t = t.capacity do
    Condvar.wait t.not_full t.lk th
  done;
  Atomics.write t.chip th (t.ring + t.tail) v;
  t.tail <- (t.tail + 1) mod t.capacity;
  t.produced <- t.produced + 1;
  (* Broadcast while holding the lock: the woken getters re-check the
     predicate under the lock, so herd order does not matter. *)
  Condvar.broadcast t.not_empty th;
  Lock.release t.lk th

let get t th =
  Lock.acquire t.lk th;
  while length t = 0 do
    Condvar.wait t.not_empty t.lk th
  done;
  let v = Atomics.read t.chip th (t.ring + t.head) in
  t.head <- (t.head + 1) mod t.capacity;
  t.consumed <- t.consumed + 1;
  Condvar.broadcast t.not_full th;
  Lock.release t.lk th;
  v
