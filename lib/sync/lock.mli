(** Locks for hardware threads, built on the simulated ISA.

    Five designs over the same two-word lock layout (see DESIGN.md,
    "Synchronization on hardware threads"):

    - [Tas] — test-and-set spinlock with capped exponential backoff.
    - [Ticket] — FIFO spinlock: [word] is the next-ticket counter,
      [serving] the now-serving counter; waiters spin with backoff
      proportional to their queue distance.
    - [Mcs_spin] — MCS queue lock: per-waiter qnodes (a grant-epoch word
      and a successor word) live in simulated [Memory]; [serving] is the
      queue tail.  Waiters spin on their own grant word.
    - [Mcs_mwait] — same queue, but the waiter arms a monitor on its
      grant word {e before} publishing itself on the tail and parks in
      [mwait]: one targeted wake per handoff, zero cycles burned waiting.
    - [Park_sw] — software futex baseline: contended waiters pay the
      park/unpark context-switch tax from the cost model
      (scheduler decision + switch + IPI + cache warmup) and block at the
      engine level, exactly what a kernel futex costs today.
    - [Park_mwait] — the paper's answer: waiters arm a monitor on the
      lock word itself and [mwait]; the release store is the wake.
      Blocking costs nothing but the monitor arm; the price is a
      thundering herd (every waiter wakes per release) that this module
      does {e not} hide — E-LOCK measures it.

    Waiters in the two mwait designs re-arm their monitor after any
    crash-stop of the calling thread (a crash clears the hardware monitor
    table), and an optional [patience] turns lost wakeups into bounded
    [mwait_for] retries instead of infinite parks.  MCS queue state,
    like real MCS, is not crash-safe: a waiter that dies on the queue
    wedges it, so chaos scenarios target the parking designs.

    Not reentrant; [release] by a non-owner raises [Invalid_argument]. *)

module Chip = Switchless.Chip

type t

type kind = Tas | Ticket | Mcs_spin | Mcs_mwait | Park_sw | Park_mwait

val all_kinds : kind list
val kind_name : kind -> string

(** Instrumentation stream for lockstep model checking: [Join] fires at
    the commit instant of an acquire's first atomic operation (ticket
    draw, tail swap, first CAS), [Grant] when ownership transfers, the
    rest at the obvious points.  The payload is the thread's ptid. *)
type event =
  | Join of int
  | Grant of int
  | Release of int
  | Park of int
  | Wake of int

val create :
  ?patience:int ->
  ?spin_cap:int ->
  ?on_event:(event -> unit) ->
  Chip.t ->
  kind ->
  t
(** [patience] (cycles) bounds each mwait park with a deadline; a timeout
    bumps the ["sync.park_retry"] recovery site and retries.  Default:
    park forever (liveness then rests on the release wake or a watchdog
    nudge).  [spin_cap] caps spin backoff in cycles (default 2048). *)

val kind : t -> kind
val word : t -> Switchless.Memory.addr
(** The lock word, for monitors and assertions. *)

val acquire : t -> Chip.thread -> unit
val release : t -> Chip.thread -> unit
val with_lock : t -> Chip.thread -> (unit -> 'a) -> 'a
val owner : t -> int
(** Ptid of the current holder, [-1] when free. *)

type stats = {
  acquires : int;
  contended : int;  (** Acquires that took the slow path. *)
  parks : int;  (** mwait parks / software blocks entered. *)
  wakes : int;  (** Returns from a park (incl. spurious herd wakes). *)
  handoff : Sl_util.Histogram.t;
      (** Release-to-grant latency, recorded only when a release had
          waiters pending. *)
  fifo_distance_mean : float;
      (** Mean |grant rank − join rank|; 0 for a perfectly FIFO lock. *)
  counts : (int * int) list;  (** Per-ptid acquire counts, sorted. *)
  max_count : int;
  min_count : int;  (** Fairness spread over threads that ever joined. *)
}

val stats : t -> stats
