(** Condition variables on a monitored epoch word.

    A condvar is one [Memory] word holding a broadcast epoch.  [wait]
    arms a monitor on the word and snapshots the epoch {e while still
    holding the lock}, releases, and parks until the epoch moves — the
    arm-and-snapshot-before-release order closes the classic lost-signal
    window.  [broadcast] bumps the epoch with a single store; the
    monitor hardware delivers the wake to every armed waiter, so there
    is no software wake list and no "signal consumed by a dying thread"
    hazard: this module only offers broadcast semantics. *)

module Chip = Switchless.Chip

type t

val create : Chip.t -> t

val word : t -> Switchless.Memory.addr

val wait : t -> Lock.t -> Chip.thread -> unit
(** Caller must hold [lock]; returns holding it again.  Spurious returns
    are absorbed internally (the caller still must re-check its predicate
    after [wait], as with any condvar, because the condition may have
    been consumed by another woken thread). *)

val broadcast : t -> Chip.thread -> unit
(** Wake every current waiter.  May be called with or without the lock
    held; callers that publish state the waiters re-check should do so
    before broadcasting (under the lock). *)

val broadcasts : t -> int
(** Epoch observed so far — number of broadcasts issued. *)
