module Chip = Switchless.Chip
module Memory = Switchless.Memory
module Params = Switchless.Params
module Smt_core = Switchless.Smt_core

let peek chip addr = Memory.read (Chip.memory chip) addr

let read ?(kind = Smt_core.Overhead) chip th addr =
  Chip.exec th ~kind 1;
  Memory.read (Chip.memory chip) addr

let write chip th addr v =
  Chip.exec th ~kind:Smt_core.Overhead 1;
  Memory.write (Chip.memory chip) addr v

(* Pay the RMW issue latency up front; the read and write then commit in
   the same event callback, with no simulated time in between — that
   instant is the linearization point. *)
let rmw chip th addr f =
  Chip.exec th ~kind:Smt_core.Overhead (Chip.params chip).Params.cas_cycles;
  let m = Chip.memory chip in
  let old = Memory.read m addr in
  Memory.write m addr (f old);
  old

let cas chip th addr ~expect ~desired =
  Chip.exec th ~kind:Smt_core.Overhead (Chip.params chip).Params.cas_cycles;
  let m = Chip.memory chip in
  let v = Memory.read m addr in
  if Int64.equal v expect then begin
    Memory.write m addr desired;
    true
  end
  else false

let exchange chip th addr v = rmw chip th addr (fun _ -> v)
let fetch_add chip th addr d = rmw chip th addr (fun old -> Int64.add old d)
