(** Bounded producer-consumer queue on a {!Lock} and two {!Condvar}s.

    Items are int64 payloads stored in a simulated-[Memory] ring; [put]
    blocks while full, [get] while empty.  The conservation law the
    property suite and chaos scenarios assert:
    [produced t = consumed t + length t] at any quiescent point. *)

module Chip = Switchless.Chip

type t

val create : ?kind:Lock.kind -> ?patience:int -> Chip.t -> capacity:int -> t
(** Default lock kind is [Park_mwait] — the paper's design.  [patience]
    is passed through to the lock (see {!Lock.create}). *)

val lock : t -> Lock.t

val put : t -> Chip.thread -> int64 -> unit
val get : t -> Chip.thread -> int64

val length : t -> int
val produced : t -> int
val consumed : t -> int
