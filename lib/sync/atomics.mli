(** Simulated atomic read-modify-write on {!Switchless.Memory} words.

    The simulator's [Isa.load]/[Isa.store] each consume simulated time, so
    a load-modify-store sequence written with them can interleave with
    other threads and is {e not} atomic.  These helpers restore atomicity
    the same way hardware does: the issue cost ([Params.cas_cycles] for an
    RMW, one cycle for a plain access) is paid {e first}, and the memory
    read and write then commit back-to-back inside one event callback with
    no simulated time between them — indivisible at the commit instant.

    All accesses here go through [Memory] directly rather than
    [Isa.load]/[Isa.store], so they are invisible to the race detector's
    per-access probes (like DMA).  That is deliberate: lock words are
    contended by construction, and the happens-before edges a lock
    provides to its critical sections are exactly what the ptid-level
    detector cannot see (see ANALYSIS.md's known-limitation note on
    engine-level synchronization).  A [write] still fires monitor write
    hooks, so mwait-based waiters wake exactly as for an [Isa.store]. *)

module Chip = Switchless.Chip
module Memory = Switchless.Memory
module Smt_core = Switchless.Smt_core

val peek : Chip.t -> Memory.addr -> int64
(** Free, zero-cycle read — for assertions and stats outside simulated
    code paths, never for a simulated thread's decision making. *)

val read : ?kind:Smt_core.kind -> Chip.t -> Chip.thread -> Memory.addr -> int64
(** One-cycle load by [thread].  [kind] defaults to [Overhead]; spin
    loops pass [Poll] so wasted lock-wait cycles land in the poll
    bucket. *)

val write : Chip.t -> Chip.thread -> Memory.addr -> int64 -> unit
(** One-cycle store by [thread]; fires monitor write hooks. *)

val cas :
  Chip.t -> Chip.thread -> Memory.addr -> expect:int64 -> desired:int64 -> bool
(** Compare-and-swap: pays [Params.cas_cycles], then atomically replaces
    [expect] with [desired].  Returns whether the swap happened.  A failed
    CAS does not write (and so wakes no monitors). *)

val exchange : Chip.t -> Chip.thread -> Memory.addr -> int64 -> int64
(** Atomic swap; returns the previous value. *)

val fetch_add : Chip.t -> Chip.thread -> Memory.addr -> int64 -> int64
(** Atomic add; returns the previous value. *)
