module Chip = Switchless.Chip
module Isa = Switchless.Isa
module Memory = Switchless.Memory
module Recovery = Sl_util.Recovery

type cslot = { mutable armed : bool; mutable armed_crashes : int }

type t = {
  chip : Chip.t;
  word : Memory.addr;
  slots : (int, cslot) Hashtbl.t;
}

let create chip =
  { chip; word = Memory.alloc (Chip.memory chip) 1; slots = Hashtbl.create 64 }

let word t = t.word

let slot_of t th =
  match Hashtbl.find t.slots (Chip.ptid th) with
  | s -> s
  | exception Not_found ->
    let s = { armed = false; armed_crashes = 0 } in
    Hashtbl.replace t.slots (Chip.ptid th) s;
    s

(* Same crash-aware arm cache as Lock: a crash-stop clears the hardware
   monitor table, so the cached bit is keyed by the crash count.  Thread
   and word come in as parameters (not dug out of records), which also
   lets the static protocol layer summarize this as an arming function
   of its first argument. *)
let ensure_armed th s word =
  let crashes = Chip.crash_count th in
  if (not s.armed) || s.armed_crashes <> crashes then begin
    if s.armed && s.armed_crashes <> crashes then Recovery.bump "sync.rearm";
    Isa.monitor th word;
    s.armed <- true;
    s.armed_crashes <- crashes
  end

let wait t lock th =
  let s = slot_of t th in
  (* Arm and snapshot the epoch BEFORE releasing the lock: a broadcast
     that fires the instant after the release is then either visible in
     the snapshot comparison or latched by the armed monitor. *)
  ensure_armed th s t.word;
  let epoch0 = Atomics.read t.chip th t.word in
  Lock.release lock th;
  while Int64.equal (Atomics.read t.chip th t.word) epoch0 do
    ignore (Isa.mwait th : Memory.addr)
  done;
  Lock.acquire lock th

let broadcast t th = ignore (Atomics.fetch_add t.chip th t.word 1L : int64)

let broadcasts t = Int64.to_int (Atomics.peek t.chip t.word)
