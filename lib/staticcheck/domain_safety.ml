open Typedtree

(* Blessed cross-domain cells. *)
let safe_types = [ "Atomic.t"; "Domain.DLS.key" ]

(* Mutable containers with no internal synchronisation. *)
let mutable_builtin =
  [ "ref"; "array"; "bytes"; "Hashtbl.t"; "Queue.t"; "Stack.t"; "Buffer.t" ]

(* Immutable wrappers worth looking through for a mutable payload. *)
let containers = [ "option"; "list"; "result"; "Lazy.t" ]

let expand env ty = try Ctype.expand_head (Spath.full_env env) ty with _ -> ty

let mutable_record env p =
  match Env.find_type p (Spath.full_env env) with
  | decl -> (
    match decl.Types.type_kind with
    | Types.Type_record (lbls, _)
      when List.exists (fun l -> l.Types.ld_mutable = Asttypes.Mutable) lbls ->
      Some (Spath.name p ^ " (record with mutable fields)")
    | _ -> None)
  | exception Not_found -> None

let rec mutable_reason env depth ty =
  if depth > 4 then None
  else
    let ty = expand env ty in
    match Types.get_desc ty with
    | Types.Ttuple tys -> List.find_map (mutable_reason env (depth + 1)) tys
    | Types.Tconstr (p, args, _) ->
      if Spath.matches_any safe_types p <> None then None
      else (
        match Spath.matches_any mutable_builtin p with
        | Some pat -> Some pat
        | None -> (
          match mutable_record env p with
          | Some reason -> Some reason
          | None ->
            if Spath.matches_any containers p <> None then
              List.find_map (mutable_reason env (depth + 1)) args
            else None))
    | _ -> None

let check ~file str =
  let found = ref [] in
  let visit_binding vb =
    match vb.vb_pat.pat_desc with
    | Tpat_var (id, _) | Tpat_alias (_, id, _) -> (
      match mutable_reason vb.vb_expr.exp_env 0 vb.vb_expr.exp_type with
      | None -> ()
      | Some reason ->
        found :=
          {
            Site.rule = "domain-safety";
            file;
            line = vb.vb_loc.Location.loc_start.Lexing.pos_lnum;
            ident = Ident.name id;
            message =
              Printf.sprintf
                "top-level mutable state (%s) is shared by every domain \
                 unsynchronised; use Atomic.t, Domain.DLS, or pass the state \
                 through an explicit handle"
                reason;
          }
          :: !found)
    | _ -> ()
  in
  let rec visit_structure str =
    List.iter
      (fun item ->
        match item.str_desc with
        | Tstr_value (_, vbs) -> List.iter visit_binding vbs
        | Tstr_module mb -> visit_module mb.mb_expr
        | Tstr_recmodule mbs ->
          List.iter (fun mb -> visit_module mb.mb_expr) mbs
        | _ -> ())
      str.str_items
  and visit_module me =
    match me.mod_desc with
    | Tmod_structure str -> visit_structure str
    | Tmod_constraint (me, _, _, _) -> visit_module me
    | Tmod_functor (_, me) -> visit_module me
    | _ -> ()
  in
  visit_structure str;
  List.sort_uniq Site.compare !found
