(** One static finding, keyed to its source site.

    [ident] is the name of the enclosing top-level binding (or ["-"]
    outside any), which is what the allowlist keys on: line numbers
    drift with every edit, [rule + file + binding] survives them. *)

type t = {
  rule : string;
  file : string;  (** source path as recorded in the .cmt, e.g. [lib/os/io_path.ml] *)
  line : int;
  ident : string;  (** enclosing top-level binding *)
  message : string;
}

val compare : t -> t -> int
(** Order by (file, line, rule, ident): report order and dedupe key. *)

val to_string : t -> string

val to_report : t -> Sl_analysis.Report.finding
(** Bridge into the shared finding machinery ({!Sl_analysis.Report}):
    [key] is the static dedupe key, [time] is 0 (static findings have no
    simulation timestamp), context carries the site. *)
