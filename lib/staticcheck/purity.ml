open Typedtree

(* The same vocabularies as the token lint (lib/analysis/lint.ml), but
   matched against resolved paths: aliases are caught, strings and
   comments cannot trip a rule, and a local value that merely shares a
   banned name with a [M.f] pattern does not match. *)

let determinism_banned =
  [
    "Random.self_init";
    "Random.State.make_self_init";
    "Unix.gettimeofday";
    "Unix.time";
    "Unix.localtime";
    "Unix.gmtime";
    "Sys.time";
  ]

let print_banned =
  [
    "print_string";
    "print_endline";
    "print_newline";
    "print_int";
    "print_char";
    "print_float";
    "print_bytes";
    "prerr_string";
    "prerr_endline";
    "prerr_newline";
    "Printf.printf";
    "Printf.eprintf";
    "Format.printf";
    "Format.eprintf";
  ]

type ctx = {
  file : string;
  check_prints : bool;
  mutable binding : string;
  mutable found : Site.t list;
}

let report ctx ~rule ~loc message =
  ctx.found <-
    {
      Site.rule;
      file = ctx.file;
      line = loc.Location.loc_start.Lexing.pos_lnum;
      ident = ctx.binding;
      message;
    }
    :: ctx.found

let visit_expr ctx e =
  match e.exp_desc with
  | Texp_ident (raw, _, _) -> (
    let p = Spath.resolve_value e.exp_env raw in
    match Spath.matches_any determinism_banned p with
    | Some _ ->
      report ctx ~rule:"determinism" ~loc:e.exp_loc
        (Printf.sprintf
           "%s depends on the host clock/entropy and breaks simulation \
            determinism"
           (Spath.name p))
    | None ->
      if ctx.check_prints then (
        match Spath.matches_any print_banned p with
        | Some _ ->
          report ctx ~rule:"no-print" ~loc:e.exp_loc
            (Printf.sprintf
               "%s writes to the terminal from library code; return data or \
                take a formatter instead"
               (Spath.name p))
        | None -> ()))
  | Texp_try (_, cases) -> (
    (* Only a handler whose first pattern is the bare wildcard: a
       trailing [| _ ->] after named exceptions is a deliberate
       catch-all, same convention as the token lint. *)
    match cases with
    | { c_lhs = { pat_desc = Tpat_any; _ }; _ } :: _ ->
      report ctx ~rule:"no-blanket-catch" ~loc:e.exp_loc
        "try ... with _ -> swallows every exception (including sanitizer \
         assertions); match the exceptions you expect by name"
    | _ -> ())
  | _ -> ()

let check ~file ~check_prints str =
  let ctx = { file; check_prints; binding = "-"; found = [] } in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun it e ->
          visit_expr ctx e;
          Tast_iterator.default_iterator.expr it e);
      value_binding =
        (fun it vb ->
          (match vb.vb_pat.pat_desc with
          | Tpat_var (id, _) when ctx.binding = "-" ->
            ctx.binding <- Ident.name id;
            Tast_iterator.default_iterator.value_binding it vb;
            ctx.binding <- "-"
          | _ -> Tast_iterator.default_iterator.value_binding it vb));
    }
  in
  it.Tast_iterator.structure it str;
  List.sort_uniq Site.compare ctx.found
