(** Rule (3): determinism and print hygiene, typed.

    The token lint's [determinism]/[no-print]/[no-blanket-catch] rules
    re-expressed over resolved identifiers: [Unix.gettimeofday] is
    caught through any alias, a string literal mentioning it is not,
    and a [try ... with _ ->] is recognised from the typedtree rather
    than a token stack.  The token linter retains only the [missing-mli]
    presence check (see {!Sl_analysis.Lint.scan_tree}).

    [check_prints] is false for terminal-facing directories (the same
    [util] exemption the token lint used). *)

val check :
  file:string -> check_prints:bool -> Typedtree.structure -> Site.t list
