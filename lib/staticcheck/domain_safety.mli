(** Rule (2): domain-safety of module-level state.

    A top-level binding whose value is (or transitively contains) an
    unsynchronised mutable cell — [ref], [array], [bytes], [Hashtbl.t],
    [Queue.t], [Stack.t], [Buffer.t], or a record with [mutable]
    fields — is shared by every domain that links the library.  With
    the parallel experiment runner spawning one domain per experiment,
    such state is a data race waiting for a schedule.  [Atomic.t] and
    [Domain.DLS.key] values are the blessed alternatives and pass;
    functions are exempt (each call builds fresh state).  The check is
    on the {e type} of the binding, through abbreviations, tuples and
    [option]/[list]/[result]/[Lazy.t] wrappers. *)

val check : file:string -> Typedtree.structure -> Site.t list
