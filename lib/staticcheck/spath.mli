(** Resolved-path matching for the typed rules.

    Every rule in this library matches {e resolved identifiers} — the
    [Path.t] the type-checker put in the typedtree — never source
    tokens, so aliasing ([module Isa = Switchless.Isa]), shadowing and
    strings/comments cannot fool a rule (the failure mode of the token
    lint this layer replaces).  Matching is by {e dotted suffix} of the
    normalized path: ["Isa.mwait"] matches [Isa.mwait],
    [Switchless.Isa.mwait] and [Switchless__Isa.mwait] alike, while a
    local value that merely happens to be called [mwait] only matches
    the one-component suffix ["mwait"]. *)

val name : Path.t -> string
(** Normalized dotted name: [Stdlib] prefixes are dropped and
    dune-mangled unit names ([Sl_engine__Sim]) reduced to their last
    component ([Sim]), so callers match against the name a reader sees
    in the source. *)

val matches : string -> Path.t -> bool
(** [matches "M.f" p] — the normalized name of [p] ends with the given
    dotted suffix, on component boundaries. *)

val matches_any : string list -> Path.t -> string option
(** First pattern of the list that {!matches}, if any. *)

val full_env : Env.t -> Env.t
(** Reconstruct a cmt summary env via [Envaux] (dependency [.cmi]s load
    through the [Load_path] primed by {!Cmt_load}); on failure returns
    the summary env, degrading lookups toward silence. *)

val resolve_value : Env.t -> Path.t -> Path.t
(** Canonical value path with module aliases expanded: [S.time]
    resolves to [Sys.time] when [S] aliases [Sys].  Unresolvable paths
    come back unchanged. *)

val head_constr : Types.type_expr -> Path.t option
(** The head type constructor of a type expression, skipping links. *)

val type_matches : string -> Types.type_expr -> bool
(** [type_matches "Memory.addr" ty] — {!matches} on the head
    constructor of [ty]. *)
