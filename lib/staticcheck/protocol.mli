(** Rule (1): arm-before-park / arm-before-register.

    The monitor/mwait parking protocol is race-free only in one order:
    the monitor must be armed {e before} the thread parks and before the
    thread is published to any registry a third party can ring it
    through — a doorbell rung before MONITOR executes is architecturally
    lost (the boot-window lost-doorbell race found by test/dist's
    reference-model property).

    Two flow-sensitive checks over each function body, in evaluation
    order, with the armed/taint state inherited by closures created
    after the fact:

    - [park-before-arm] — an [Isa.mwait]/[Isa.mwait_for] on a thread
      handle that has no [Isa.monitor] arm dominating it.  Module-local
      functions that unconditionally arm a parameter (e.g.
      [Hw_channel.issue]) are summarized, so a call to one counts as an
      arm of the corresponding argument at the call site.
    - [register-before-arm] — a hand-out ([Mailbox.send], [Queue.push],
      [Queue.add], or a mutable-field publish) of a {e freshly
      constructed} worker (a record carrying a [Memory.addr] doorbell
      field) with no monitor arm dominating the hand-out.  Values that
      arrived through a mailbox/queue receive are not fresh: their
      sender owned the obligation, and the wakeup latch covers
      re-registration after first park.
    - [lock-arm-before-publish] — a waiter-list publish RMW
      ([Atomics.exchange]/[Atomics.fetch_add]/[Atomics.rmw] — an MCS
      tail swap or a ticket draw) with no monitor arm dominating it,
      inside a body that parks directly.  Once the RMW commits, a
      releaser may grant this waiter at any instant; if the grant lands
      in the publish-to-arm window the store is never latched and the
      park below sleeps through its own wakeup.  The rule is scoped to
      bodies whose own text parks (not through nested lambdas or
      callees), so pure spin loops and split join/wait helpers stay
      silent. *)

val check : file:string -> Typedtree.structure -> Site.t list
