(** Locating and reading the [.cmt] typedtree artifacts dune produces.

    Dune writes one [.cmt] per implementation next to the object files,
    under [<dir>/.<lib>.objs/byte/].  Given source roots (typically
    [lib]), the loader walks the matching build tree — [_build/default/
    <root>] when it exists, the root itself when the caller already
    stands inside the build tree (as dune rules do) — and returns every
    implementation typedtree together with the source path recorded by
    the compiler. *)

type unit_ = {
  source : string;  (** e.g. [lib/dist/server.ml], as recorded in the cmt *)
  structure : Typedtree.structure;
}

val load_roots : string list -> unit_ list
(** All implementation cmts under the build trees of the given roots,
    sorted by source path (deterministic report order).  Generated
    wrapper modules (no [.ml] source) are skipped.  Raises [Failure]
    when a root has no build tree at all — the caller forgot to build
    with binary annotations first. *)

val load_file : string -> unit_ option
(** Read a single [.cmt]; [None] when it is not an implementation. *)
