(** The typed static layer: four protocol-aware rules over the [.cmt]
    typedtrees dune already produces, surfaced as [switchless-sim
    check].

    - [park-before-arm] / [register-before-arm] — {!Protocol}: the
      monitor/mwait boot-window protocol.
    - [domain-safety] — {!Domain_safety}: top-level mutable state must
      be [Atomic.t] or [Domain.DLS].
    - [determinism] / [no-print] / [no-blanket-catch] — {!Purity}: the
      token lint's hygiene rules on resolved identifiers.
    - [zero-alloc] — {!Zero_alloc}: the [\[@@sl.zero_alloc\]] hot-path
      allocation budget.

    Findings dedupe per static site and flow through
    {!Sl_analysis.Report} (see {!Site.to_report}); deliberate
    exceptions live in a committed allowlist ([staticcheck.allow]),
    one justified line each. *)

val scan : string list -> Site.t list
(** Raw findings over the build trees of the given source roots,
    deduped and in deterministic (file, line, rule) order.  Raises
    [Failure] when a root has not been built. *)

type result = {
  findings : Site.t list;  (** not covered by the allowlist: failures *)
  allowed : Site.t list;  (** suppressed by a justified allowlist entry *)
  unused : Allowlist.entry list;
      (** stale allowlist entries that matched nothing — also failures,
          so the allowlist cannot rot *)
}

val run : ?allow:string -> string list -> result
(** {!scan} filtered through the allowlist at [allow] (default
    [staticcheck.allow]; a missing file is an empty allowlist). *)
