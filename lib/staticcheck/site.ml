type t = {
  rule : string;
  file : string;
  line : int;
  ident : string;
  message : string;
}

let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
    match Int.compare a.line b.line with
    | 0 -> (
      match String.compare a.rule b.rule with
      | 0 -> String.compare a.ident b.ident
      | c -> c)
    | c -> c)
  | c -> c

let to_string s =
  Printf.sprintf "%s:%d: [%s] (%s) %s" s.file s.line s.rule s.ident s.message

let to_report s =
  {
    Sl_analysis.Report.rule = s.rule;
    key = Printf.sprintf "%s:%s:%s" s.rule s.file s.ident;
    time = 0;
    message = s.message;
    context =
      [
        Printf.sprintf "at %s:%d" s.file s.line;
        Printf.sprintf "in binding %s" s.ident;
      ];
  }
