(** Rule (4): the [\[@@sl.zero_alloc\]] hot-path allocation budget.

    A binding annotated [\[@@sl.zero_alloc\]] promises its body performs
    no heap allocation per call, so the simulator's inner loop runs at
    a steady minor-heap rate.  The check rejects the allocation classes
    the compiler cannot erase without flambda: closures created inside
    the body, tuple/record/array/non-constant-constructor/polymorphic-
    variant/lazy blocks, and partial applications (an argument omitted,
    or an application whose result type is still an arrow).  The
    outermost [fun] chain is the calling convention and exempt; float
    boxing is documented as out of scope (DESIGN.md). *)

val check : file:string -> Typedtree.structure -> Site.t list
