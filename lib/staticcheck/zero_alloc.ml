open Typedtree

let attribute = "sl.zero_alloc"

let annotated vb =
  List.exists
    (fun a -> a.Parsetree.attr_name.Location.txt = attribute)
    vb.vb_attributes

let expand env ty = try Ctype.expand_head env ty with _ -> ty

(* One allocation class per expression head.  Float boxing and string
   building are out of scope (see DESIGN.md): the contract covers the
   allocations flambda-less ocamlopt cannot remove — closures, blocks,
   and partial applications. *)
let alloc_reason e =
  match e.exp_desc with
  | Texp_function _ -> Some "closure capture (fun ... in the body)"
  | Texp_tuple _ -> Some "tuple construction"
  | Texp_record _ -> Some "record construction"
  | Texp_array _ -> Some "array construction"
  | Texp_variant (_, Some _) -> Some "polymorphic-variant construction"
  | Texp_lazy _ -> Some "lazy-block construction"
  | Texp_construct (lid, cd, _ :: _) -> (
    match cd.Types.cstr_tag with
    | Types.Cstr_unboxed -> None
    | _ ->
      Some
        (Printf.sprintf "boxed constructor %s"
           (String.concat "." (Longident.flatten lid.Location.txt))))
  | Texp_apply (_, args) ->
    if List.exists (fun (_, a) -> a = None) args then
      Some "partial application (argument omitted)"
    else (
      match Types.get_desc (expand e.exp_env e.exp_type) with
      | Types.Tarrow _ -> Some "partial application (result is a function)"
      | _ -> None)
  | _ -> None

type ctx = { file : string; mutable found : Site.t list }

let scan_body ctx ~ident body =
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match alloc_reason e with
          | Some reason ->
            ctx.found <-
              {
                Site.rule = "zero-alloc";
                file = ctx.file;
                line = e.exp_loc.Location.loc_start.Lexing.pos_lnum;
                ident;
                message =
                  Printf.sprintf
                    "[@@%s] function allocates: %s; keep the hot path \
                     allocation-free or drop the annotation"
                    attribute reason;
              }
              :: ctx.found
          | None -> ());
          Tast_iterator.default_iterator.expr it e);
    }
  in
  it.Tast_iterator.expr it body

(* The outermost [fun] chain is the calling convention, not an
   allocation: a fully applied curried call builds no intermediate
   closure.  Everything below it is body. *)
let rec scan_fun ctx ~ident e =
  match e.exp_desc with
  | Texp_function { cases; _ } ->
    List.iter (fun c -> scan_fun ctx ~ident c.c_rhs) cases
  | _ -> scan_body ctx ~ident e

let visit_binding ctx vb =
  if annotated vb then
    let ident =
      match vb.vb_pat.pat_desc with
      | Tpat_var (id, _) | Tpat_alias (_, id, _) -> Ident.name id
      | _ -> "-"
    in
    scan_fun ctx ~ident vb.vb_expr

let check ~file str =
  let ctx = { file; found = [] } in
  let rec visit_structure str =
    List.iter
      (fun item ->
        match item.str_desc with
        | Tstr_value (_, vbs) -> List.iter (visit_binding ctx) vbs
        | Tstr_module mb -> visit_module mb.mb_expr
        | Tstr_recmodule mbs ->
          List.iter (fun mb -> visit_module mb.mb_expr) mbs
        | _ -> ())
      str.str_items
  and visit_module me =
    match me.mod_desc with
    | Tmod_structure str -> visit_structure str
    | Tmod_constraint (me, _, _, _) -> visit_module me
    | Tmod_functor (_, me) -> visit_module me
    | _ -> ()
  in
  visit_structure str;
  List.sort_uniq Site.compare ctx.found
