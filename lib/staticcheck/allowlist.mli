(** The committed exception file for {!Staticcheck}.

    Line format (whitespace-separated, [#] starts a comment line):

    {v rule  file-suffix  binding  -- one-line justification v}

    A finding is allowlisted when its rule matches exactly, the
    recorded file is a path suffix of the finding's file (so entries
    survive build-dir prefixes), and the enclosing binding name matches
    exactly.  Everything after the three fields is the human
    justification and is ignored by the matcher — but the file format
    forces one to be written. *)

type entry = {
  rule : string;
  file : string;
  ident : string;
  justification : string;
}

type t

val empty : t

val load : string -> t
(** Parse the allowlist at [path]; missing file = {!empty}.  Raises
    [Failure] naming the offending line on a malformed entry. *)

val permits : t -> Site.t -> bool
(** Marks the matching entry as used. *)

val unused : t -> entry list
(** Entries that never matched a finding — stale exceptions worth
    deleting.  Meaningful only after the findings have been filtered
    through {!permits}. *)
