type unit_ = {
  source : string;
  structure : Typedtree.structure;
}

(* The typedtrees in a .cmt carry envs reduced to their summaries;
   Envaux reconstructs them on demand, which loads dependency .cmis
   through the global Load_path.  The cmt records the load path its
   compilation used — relative to the build-context root, which is not
   necessarily our cwd (the check alias runs from the context root, a
   test runs from its own directory, a user runs from the workspace
   root).  [cmt_sourcefile] is relative to the same root, so the first
   candidate prefix under which it exists locates the root. *)
let context_candidates =
  [
    Filename.concat "_build" "default";
    Filename.current_dir_name;
    Filename.parent_dir_name;
    Filename.concat Filename.parent_dir_name Filename.parent_dir_name;
    Filename.concat
      (Filename.concat Filename.parent_dir_name Filename.parent_dir_name)
      Filename.parent_dir_name;
  ]

let loadpath_dirs infos source =
  let root =
    match
      List.find_opt
        (fun c -> Sys.file_exists (Filename.concat c source))
        context_candidates
    with
    | Some r -> r
    | None -> Filename.current_dir_name
  in
  List.filter_map
    (fun dir ->
      let dir = if Filename.is_relative dir then Filename.concat root dir else dir in
      if Sys.file_exists dir then Some dir else None)
    infos.Cmt_format.cmt_loadpath

let load_file path =
  let infos = Cmt_format.read_cmt path in
  match infos.Cmt_format.cmt_annots with
  | Cmt_format.Implementation structure ->
    let source =
      match infos.Cmt_format.cmt_sourcefile with
      | Some s -> s
      | None -> path
    in
    if Filename.check_suffix source ".ml" then begin
      let present = Load_path.get_paths () in
      List.iter
        (fun dir -> if not (List.mem dir present) then Load_path.add_dir dir)
        (loadpath_dirs infos source);
      Some { source; structure }
    end
    else None  (* generated wrapper/alias modules *)
  | _ -> None

let rec walk dir =
  if not (Sys.is_directory dir) then [ dir ]
  else
    Sys.readdir dir |> Array.to_list |> List.sort compare
    |> List.concat_map (fun entry -> walk (Filename.concat dir entry))

let build_tree root =
  let built = Filename.concat (Filename.concat "_build" "default") root in
  if Sys.file_exists built && Sys.is_directory built then Some built
  else if Sys.file_exists root && Sys.is_directory root then Some root
  else None

let load_roots roots =
  let units =
    List.concat_map
      (fun root ->
        match build_tree root with
        | None ->
          failwith
            (Printf.sprintf
               "staticcheck: no build tree for %S (run dune build first)" root)
        | Some dir ->
          walk dir
          |> List.filter (fun p -> Filename.check_suffix p ".cmt")
          |> List.filter_map load_file)
      roots
  in
  List.sort (fun a b -> String.compare a.source b.source) units
