(* Dotted-suffix matching over resolved [Path.t]s.  See the .mli for
   the normalization contract. *)

(* A dune-mangled compilation unit ("Sl_engine__Sim", "Stdlib__Printf")
   names the wrapped module after the double underscore; reduce it to
   that component so rules are written against source-level names. *)
let demangle component =
  match String.index_opt component '_' with
  | None -> component
  | Some _ -> (
    let n = String.length component in
    let rec find i =
      if i + 1 >= n then None
      else if component.[i] = '_' && component.[i + 1] = '_' then Some i
      else find (i + 1)
    in
    match find 0 with
    | None -> component
    | Some i when i + 2 < n ->
      String.capitalize_ascii (String.sub component (i + 2) (n - i - 2))
    | Some _ -> component)

let rec components p acc =
  match p with
  | Path.Pident id -> demangle (Ident.name id) :: acc
  | Path.Pdot (p, s) -> components p (s :: acc)
  | Path.Papply (p, _) -> components p acc
  | Path.Pextra_ty (p, _) -> components p acc

let normalized p =
  match components p [] with
  | "Stdlib" :: (_ :: _ as rest) -> rest
  | parts -> parts

let name p = String.concat "." (normalized p)

let matches pattern p =
  let want = String.split_on_char '.' pattern in
  let got = normalized p in
  let rec suffix xs =
    xs = want || match xs with [] -> false | _ :: tl -> suffix tl
  in
  suffix got

let matches_any patterns p = List.find_opt (fun pat -> matches pat p) patterns

(* The envs embedded in a .cmt are summaries; reconstruct before any
   lookup.  Reconstruction pulls dependency .cmis through Load_path
   (primed by Cmt_load); a failure degrades to the summary env, which
   makes lookups miss — rules widen toward silence, never toward a
   false report. *)
let full_env env =
  try Envaux.env_of_only_summary env with Envaux.Error _ -> env

(* Canonical value path: module aliases expanded ([module S = Sys]
   makes [S.time] normalize to [Sys.time]), so suffix patterns match
   the real identity, not the local spelling. *)
let resolve_value env p =
  match Env.normalize_value_path None (full_env env) p with
  | p -> p
  | exception Not_found -> p
  | exception Envaux.Error _ -> p

let head_constr ty =
  match Types.get_desc ty with
  | Types.Tconstr (p, _, _) -> Some p
  | _ -> None

let type_matches pattern ty =
  match head_constr ty with Some p -> matches pattern p | None -> false
