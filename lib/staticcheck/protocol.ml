open Typedtree

(* The protocol vocabulary.  All matching is on resolved paths (see
   {!Spath}); a local [module Isa = Switchless.Isa] alias or a direct
   qualified use both resolve to a path these suffixes match. *)
let monitor_fns = [ "Isa.monitor" ]
let park_fns = [ "Isa.mwait"; "Isa.mwait_for" ]
let publish_fns = [ "Mailbox.send"; "Queue.push"; "Queue.add" ]

(* Waiter-list publish primitives: the atomic RMWs a lock waiter uses to
   make itself visible to a releaser (MCS tail swap, ticket draw).  In a
   body that parks, these must happen only after the waiter's monitor is
   armed — a grant landed in the publish-to-arm window is a wake the
   waiter then sleeps through. *)
let lock_publish_fns = [ "Atomics.exchange"; "Atomics.fetch_add"; "Atomics.rmw" ]

(* The doorbell carrier: a record with a field of this type is a worker
   some third party can ring. *)
let doorbell_type = "Memory.addr"

(* --- flow state ----------------------------------------------------------- *)

(* Immutable and threaded through the walk in evaluation order.  A
   closure created at some program point inherits the state at that
   point (it captures exactly that environment); what the closure does
   internally does not arm the creating flow, since the closure may run
   arbitrarily later (or never). *)
type state = {
  armed : Ident.t list;  (* thread handles with a monitor armed *)
  armed_any : bool;  (* some monitor arm dominates this point *)
  tainted : Ident.t list;  (* freshly constructed, not-yet-armed workers *)
}

let initial = { armed = []; armed_any = false; tainted = [] }

let arm st id = { st with armed = id :: st.armed; armed_any = true }
let taint st id = { st with tainted = id :: st.tainted }
let is_armed st id = List.exists (Ident.same id) st.armed
let is_tainted st id = List.exists (Ident.same id) st.tainted

(* --- structural predicates ------------------------------------------------ *)

exception Found

let expr_contains pred e =
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun it e ->
          if pred e then raise Found;
          Tast_iterator.default_iterator.expr it e);
    }
  in
  try
    it.Tast_iterator.expr it e;
    false
  with Found -> true

(* A record construction carrying a doorbell field, anywhere inside [e]
   (including under lambdas: [Array.init n (fun i -> { doorbell; .. })]
   builds workers just the same). *)
let builds_worker e =
  expr_contains
    (fun e ->
      match e.exp_desc with
      | Texp_record { fields; _ } ->
        Array.exists
          (fun (ld, _) -> Spath.type_matches doorbell_type ld.Types.lbl_arg)
          fields
      | _ -> false)
    e

(* A park call in this body, outside nested lambdas (a park inside a
   callback belongs to the callback's own flow). *)
let rec parks_directly e =
  match e.exp_desc with
  | Texp_function _ -> false
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, _)
    when Spath.matches_any park_fns p <> None -> true
  | _ ->
    let found = ref false in
    let it =
      {
        Tast_iterator.default_iterator with
        expr = (fun _ ce -> if parks_directly ce then found := true);
      }
    in
    Tast_iterator.default_iterator.expr it e;
    !found

let mentions_tainted st e =
  expr_contains
    (fun e ->
      match e.exp_desc with
      | Texp_ident (Path.Pident id, _, _) -> is_tainted st id
      | _ -> false)
    e

let ident_of e =
  match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _) -> Some id
  | _ -> None

(* --- intra-module arming summaries ---------------------------------------- *)

(* [let issue t ~client ... = ... Isa.monitor client ...] arms its
   [~client] argument: record which parameters a module-local function
   unconditionally arms, so call sites count as arms.  Only monitor
   calls outside nested lambdas count — an arm inside a callback may
   never run. *)

type arg_key = Labelled_arg of string | Positional of int

let key_matches k (label : Asttypes.arg_label) ~pos =
  match (k, label) with
  | Labelled_arg s, (Asttypes.Labelled l | Asttypes.Optional l) -> s = l
  | Positional i, Asttypes.Nolabel -> i = pos
  | _ -> false

(* Strip the outermost chain of single-case [fun] nodes, collecting
   [(arg_key, param ident)] for parameters bound to plain variables. *)
let rec collect_params pos acc e =
  match e.exp_desc with
  | Texp_function { arg_label; cases = [ c ]; _ } ->
    let key, pos =
      match arg_label with
      | Asttypes.Labelled l | Asttypes.Optional l -> (Labelled_arg l, pos)
      | Asttypes.Nolabel -> (Positional pos, pos + 1)
    in
    let binder =
      match c.c_lhs.pat_desc with
      | Tpat_var (id, _) -> Some id
      | Tpat_alias (_, id, _) -> Some id
      | _ -> None
    in
    collect_params pos ((key, binder) :: acc) c.c_rhs
  | _ -> (List.rev acc, e)

let rec monitor_targets acc e =
  match e.exp_desc with
  | Texp_function _ -> acc
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args)
    when Spath.matches_any monitor_fns p <> None -> (
    match List.find_map (function Asttypes.Nolabel, Some a -> ident_of a | _ -> None) args with
    | Some id -> id :: acc
    | None -> acc)
  | _ ->
    let acc = ref acc in
    let it =
      {
        Tast_iterator.default_iterator with
        expr = (fun _ ce -> acc := monitor_targets !acc ce);
      }
    in
    Tast_iterator.default_iterator.expr it e;
    !acc

let summarize_binding vb =
  match vb.vb_pat.pat_desc with
  | Tpat_var (fn_id, _) -> (
    let params, body = collect_params 0 [] vb.vb_expr in
    if params = [] then None
    else
      let armed = monitor_targets [] body in
      let keys =
        List.filter_map
          (fun (key, binder) ->
            match binder with
            | Some id when List.exists (Ident.same id) armed -> Some key
            | _ -> None)
          params
      in
      match keys with [] -> None | keys -> Some (fn_id, keys))
  | _ -> None

let summarize_structure str =
  List.concat_map
    (fun item ->
      match item.str_desc with
      | Tstr_value (_, vbs) -> List.filter_map summarize_binding vbs
      | _ -> [])
    str.str_items

(* --- the walk ------------------------------------------------------------- *)

type ctx = {
  file : string;
  summaries : (Ident.t * arg_key list) list;
  mutable binding : string;  (* enclosing top-level binding *)
  mutable parker : bool;  (* the enclosing binding's body parks *)
  mutable found : Site.t list;
}

let report ctx ~rule ~loc message =
  ctx.found <-
    {
      Site.rule;
      file = ctx.file;
      line = loc.Location.loc_start.Lexing.pos_lnum;
      ident = ctx.binding;
      message;
    }
    :: ctx.found

let positional_args args =
  (* Pair every present argument with its positional index among the
     unlabelled ones, keeping its own label. *)
  let pos = ref 0 in
  List.filter_map
    (fun (label, arg) ->
      match arg with
      | None -> None
      | Some a ->
        let here = !pos in
        if label = Asttypes.Nolabel then incr pos;
        Some (label, here, a))
    args

let rec walk ctx st e =
  match e.exp_desc with
  | Texp_function { cases; _ } ->
    (* A closure inherits the creating flow's state; its internal arms
       do not escape into the creating flow. *)
    List.iter (fun c -> ignore (walk ctx st c.c_rhs)) cases;
    st
  | Texp_let (_, vbs, body) ->
    let st =
      List.fold_left
        (fun st vb ->
          let st = walk ctx st vb.vb_expr in
          match vb.vb_pat.pat_desc with
          | Tpat_var (id, _) | Tpat_alias (_, id, _) ->
            if builds_worker vb.vb_expr then taint st id else st
          | _ -> st)
        st vbs
    in
    walk ctx st body
  | Texp_sequence (a, b) ->
    let st = walk ctx st a in
    walk ctx st b
  | Texp_ifthenelse (c, t, f) ->
    let st = walk ctx st c in
    ignore (walk ctx st t);
    Option.iter (fun f -> ignore (walk ctx st f)) f;
    st
  | Texp_match (scrut, cases, _) ->
    let st = walk ctx st scrut in
    List.iter
      (fun c ->
        Option.iter (fun g -> ignore (walk ctx st g)) c.c_guard;
        ignore (walk ctx st c.c_rhs))
      cases;
    st
  | Texp_try (b, cases) ->
    let st = walk ctx st b in
    List.iter (fun c -> ignore (walk ctx st c.c_rhs)) cases;
    st
  | Texp_while (c, b) ->
    let st = walk ctx st c in
    ignore (walk ctx st b);
    st
  | Texp_for (_, _, lo, hi, _, b) ->
    let st = walk ctx st lo in
    let st = walk ctx st hi in
    ignore (walk ctx st b);
    st
  | Texp_setfield (r, _, _, v) ->
    let st = walk ctx st r in
    let st = walk ctx st v in
    (* Only storing the worker itself (or building one in place) into a
       field is a publish; mutating an unrelated field of a tainted
       record (a counter, a slot request) is not. *)
    let stores_worker =
      builds_worker v
      ||
      match ident_of v with Some id -> is_tainted st id | None -> false
    in
    if stores_worker && not st.armed_any then
      report ctx ~rule:"register-before-arm" ~loc:e.exp_loc
        "worker published through a mutable field before its monitor is \
         armed; a doorbell rung in this window is architecturally lost";
    st
  | Texp_apply (fn, args) -> walk_apply ctx st e fn args
  | _ -> generic ctx st e

and generic ctx st e =
  let stref = ref st in
  let it =
    {
      Tast_iterator.default_iterator with
      expr = (fun _ ce -> stref := walk ctx !stref ce);
    }
  in
  Tast_iterator.default_iterator.expr it e;
  !stref

and walk_apply ctx st e fn args =
  let present = positional_args args in
  (* Walk non-lambda arguments first (they evaluate before the call);
     lambda arguments are walked below, after taint is resolved, so a
     worker-iterating callback sees its parameter tainted. *)
  let st =
    List.fold_left
      (fun st (_, _, a) ->
        match a.exp_desc with Texp_function _ -> st | _ -> walk ctx st a)
      st present
  in
  let st = match fn.exp_desc with Texp_ident _ -> st | _ -> walk ctx st fn in
  let head =
    match fn.exp_desc with Texp_ident (p, _, _) -> Some p | _ -> None
  in
  let st =
    match head with
    | Some p when Spath.matches_any monitor_fns p <> None -> (
      match
        List.find_map
          (function Asttypes.Nolabel, _, a -> ident_of a | _ -> None)
          present
      with
      | Some th -> arm st th
      | None -> { st with armed_any = true })
    | Some (Path.Pident fid) -> (
      (* A module-local arming function: its call arms the matching
         argument idents, exactly as a direct [Isa.monitor] would. *)
      match List.find_opt (fun (id, _) -> Ident.same id fid) ctx.summaries with
      | Some (_, keys) ->
        List.fold_left
          (fun st (label, pos, a) ->
            if List.exists (fun k -> key_matches k label ~pos) keys then
              match ident_of a with
              | Some id -> arm st id
              | None -> { st with armed_any = true }
            else st)
          st present
      | None -> st)
    | _ -> st
  in
  (match head with
  | Some p when Spath.matches_any park_fns p <> None ->
    let covered =
      match
        List.find_map
          (function Asttypes.Nolabel, _, a -> ident_of a | _ -> None)
          present
      with
      | Some th -> is_armed st th
      | None -> st.armed_any
    in
    if not covered then
      report ctx ~rule:"park-before-arm" ~loc:e.exp_loc
        (Printf.sprintf
           "%s parks with no dominating Isa.monitor arm on this thread; a \
            wakeup raced here is lost forever"
           (Spath.name p))
  | Some p when Spath.matches_any lock_publish_fns p <> None ->
    if ctx.parker && not st.armed_any then
      report ctx ~rule:"lock-arm-before-publish" ~loc:e.exp_loc
        (Printf.sprintf
           "%s publishes this waiter before any monitor arm, in a body that \
            parks; a grant landed in the publish-to-arm window is a wake the \
            waiter sleeps through forever (arm the wait word first)"
           (Spath.name p))
  | Some p when Spath.matches_any publish_fns p <> None ->
    if
      (not st.armed_any)
      && List.exists (fun (_, _, a) -> mentions_tainted st a) present
    then
      report ctx ~rule:"register-before-arm" ~loc:e.exp_loc
        (Printf.sprintf
           "freshly built worker handed to %s before its monitor is armed; \
            a doorbell rung in this boot window is architecturally lost \
            (register only after MONITOR executes)"
           (Spath.name p))
  | _ -> ());
  (* Now the lambda arguments, with parameter taint when a tainted
     value rides along in the same call (Array.iter over fresh
     workers taints the callback's parameter). *)
  let tainted_call =
    List.exists
      (fun (_, _, a) ->
        match a.exp_desc with
        | Texp_function _ -> false
        | _ -> mentions_tainted st a)
      present
  in
  List.iter
    (fun (_, _, a) ->
      match a.exp_desc with
      | Texp_function { cases; _ } ->
        List.iter
          (fun c ->
            let st =
              if not tainted_call then st
              else
                match c.c_lhs.pat_desc with
                | Tpat_var (id, _) | Tpat_alias (_, id, _) -> taint st id
                | _ -> st
            in
            ignore (walk ctx st c.c_rhs))
          cases
      | _ -> ())
    present;
  st

(* --- structure driver ----------------------------------------------------- *)

let rec check_structure ctx str =
  let summaries = summarize_structure str in
  let ctx = { ctx with summaries } in
  List.iter
    (fun item ->
      match item.str_desc with
      | Tstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            (ctx.binding <-
               (match vb.vb_pat.pat_desc with
               | Tpat_var (id, _) -> Ident.name id
               | _ -> "-"));
            let _, body = collect_params 0 [] vb.vb_expr in
            ctx.parker <- parks_directly body;
            ignore (walk ctx initial vb.vb_expr))
          vbs
      | Tstr_eval (e, _) ->
        ctx.binding <- "-";
        ctx.parker <- parks_directly e;
        ignore (walk ctx initial e)
      | Tstr_module mb -> check_module ctx mb.mb_expr
      | Tstr_recmodule mbs -> List.iter (fun mb -> check_module ctx mb.mb_expr) mbs
      | _ -> ())
    str.str_items;
  ctx.found

and check_module ctx me =
  match me.mod_desc with
  | Tmod_structure str -> ignore (check_structure ctx str)
  | Tmod_constraint (me, _, _, _) -> check_module ctx me
  | Tmod_functor (_, me) -> check_module ctx me
  | _ -> ()

let check ~file str =
  let ctx = { file; summaries = []; binding = "-"; parker = false; found = [] } in
  let found = check_structure ctx str in
  List.sort_uniq Site.compare found
