type entry = {
  rule : string;
  file : string;
  ident : string;
  justification : string;
}

type t = { entries : (entry * bool ref) list }

let empty = { entries = [] }

let is_space c = c = ' ' || c = '\t'

let split3 line =
  let n = String.length line in
  let rec skip i = if i < n && is_space line.[i] then skip (i + 1) else i in
  let rec word i = if i < n && not (is_space line.[i]) then word (i + 1) else i in
  let a0 = skip 0 in
  let a1 = word a0 in
  let b0 = skip a1 in
  let b1 = word b0 in
  let c0 = skip b1 in
  let c1 = word c0 in
  if a0 = a1 || b0 = b1 || c0 = c1 then None
  else
    Some
      ( String.sub line a0 (a1 - a0),
        String.sub line b0 (b1 - b0),
        String.sub line c0 (c1 - c0),
        String.trim (String.sub line c1 (n - c1)) )

let parse_line lineno line =
  let trimmed = String.trim line in
  if trimmed = "" || trimmed.[0] = '#' then None
  else
    match split3 line with
    | Some (rule, file, ident, justification) ->
      Some { rule; file; ident; justification }
    | None ->
      failwith
        (Printf.sprintf
           "allowlist line %d: expected 'rule file binding justification', got %S"
           lineno line)

let load path =
  if not (Sys.file_exists path) then empty
  else begin
    let ic = open_in path in
    let entries =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let acc = ref [] in
          (try
             let lineno = ref 0 in
             while true do
               let line = input_line ic in
               incr lineno;
               match parse_line !lineno line with
               | Some e -> acc := (e, ref false) :: !acc
               | None -> ()
             done
           with End_of_file -> ());
          List.rev !acc)
    in
    { entries }
  end

let suffix_matches ~suffix path =
  let ls = String.length suffix and lp = String.length path in
  suffix = path
  || (lp > ls
     && String.sub path (lp - ls) ls = suffix
     && path.[lp - ls - 1] = '/')

let permits t (s : Site.t) =
  match
    List.find_opt
      (fun (e, _) ->
        e.rule = s.Site.rule
        && e.ident = s.Site.ident
        && suffix_matches ~suffix:e.file s.Site.file)
      t.entries
  with
  | Some (_, used) ->
    used := true;
    true
  | None -> false

let unused t =
  List.filter_map (fun (e, used) -> if !used then None else Some e) t.entries
