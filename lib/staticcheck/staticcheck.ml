(* Terminal-facing directories keep their print exemption (same list as
   the token lint's). *)
let print_exempt_dirs = [ "util" ]

let exempt_from_prints source =
  List.exists
    (fun dir -> List.mem dir (String.split_on_char '/' source))
    print_exempt_dirs

let check_unit (u : Cmt_load.unit_) =
  let file = u.Cmt_load.source in
  let check_prints = not (exempt_from_prints file) in
  Protocol.check ~file u.Cmt_load.structure
  @ Domain_safety.check ~file u.Cmt_load.structure
  @ Purity.check ~file ~check_prints u.Cmt_load.structure
  @ Zero_alloc.check ~file u.Cmt_load.structure

let scan roots =
  Cmt_load.load_roots roots
  |> List.concat_map check_unit
  |> List.sort_uniq Site.compare

type result = {
  findings : Site.t list;
  allowed : Site.t list;
  unused : Allowlist.entry list;
}

let run ?(allow = "staticcheck.allow") roots =
  let allowlist = Allowlist.load allow in
  let sites = scan roots in
  let allowed, findings =
    List.partition (Allowlist.permits allowlist) sites
  in
  { findings; allowed; unused = Allowlist.unused allowlist }
