(** Deterministic, schedule-driven fault injection.

    The paper's wakeup primitive assumes a perfect substrate: every DMA
    doorbell lands, every [mwait] wakes exactly once, every IPI arrives.
    This module makes those assumptions breakable on purpose — a
    {!plan} assigns each fault class a probability, an injector ({!t})
    samples per-class SplitMix64 streams split from the plan's seed, and
    hooks installed into the existing layers perturb exactly the events
    the plan names:

    - NIC: dropped descriptor DMA, dropped and duplicated doorbell-tail
      writes ([Sl_dev.Nic]);
    - NVMe: completion stalls / latency spikes ([Sl_dev.Nvme]);
    - chip: lost mwait wakeups (dropped monitor deliveries), spurious
      mwait wakeups, delayed start hand-offs ([Switchless.Chip],
      [Switchless.Monitor]);
    - state store: context-read corruption, ECC-corrected (costed retry)
      vs silent (counted only) ([Switchless.State_store]);
    - interrupt baseline: dropped IPIs ([Sl_baseline.Irq]).

    Everything is a pure function of the plan (seed included) and the
    simulated schedule: no wall-clock, no global entropy — replaying a
    run with the spec recorded in its JSON header reproduces every fault
    at the same simulated instant. *)

type plan = {
  seed : int64;  (** Root of every per-class stream. *)
  nic_doorbell_drop : float;  (** P(drop a tail-doorbell write). *)
  nic_doorbell_dup : float;  (** P(replay a tail-doorbell write). *)
  nic_dma_drop : float;  (** P(lose a descriptor DMA, packet and all). *)
  nvme_stall : float;  (** P(a command's completion stalls). *)
  nvme_stall_cycles : int;  (** Extra latency of a stalled completion. *)
  mwait_lost : float;  (** P(drop one monitor delivery to one watcher). *)
  mwait_spurious : float;  (** P(a parked thread wakes with no write). *)
  mwait_spurious_delay : int;  (** Cycles from park to spurious wake. *)
  start_delay : float;  (** P(a start hand-off is delayed). *)
  start_delay_cycles : int;  (** Extra cycles of a delayed hand-off. *)
  store_ecc : float;  (** P(context read hits an ECC-corrected flip). *)
  store_silent : float;  (** P(context read corrupts silently). *)
  ipi_drop : float;  (** P(an IPI is lost after the send cost). *)
  crash_park : float;
      (** P(a parked thread crash-stops mid-mwait).  See
          {!Switchless.Chip.crash_count} for the semantics: monitors
          disarmed, body abandoned, cold restart re-runs it from
          scratch. *)
  crash_wake : float;
      (** P(a thread crash-stops at the wake boundary — doorbell
          consumed, request unprocessed: the mid-request death). *)
  crash_park_delay : int;
      (** Max cycles into a park at which a [crash_park] lands (the
          actual offset is drawn uniformly from [\[0, delay)]). *)
  crash_restart_cycles : int;  (** Crash-to-cold-restart delay. *)
  crash_boot_window : int;
      (** When nonzero, crashes only land before this simulated time —
          correlated crash storms during boot/warm-up, after which the
          system must recover unaided.  0 = crashes any time. *)
}

val none : plan
(** All probabilities zero, seed 1, default cycle knobs — the identity
    plan.  Build real plans with [{ Fault.none with ... }]. *)

val is_active : plan -> bool
(** Whether any fault class has nonzero probability. *)

(** {2 Spec strings}

    The replay-friendly encoding used by the [SWITCHLESS_FAULTS]
    environment hook and recorded in experiment JSON headers:
    ["seed=42,nic.doorbell_drop=0.01,mwait.lost=0.05"].  Keys match plan
    fields with the underscore after the subsystem replaced by a dot;
    omitted keys keep their {!none} value. *)

val parse_spec : string -> (plan, string) result

val to_spec : plan -> string
(** Canonical spec: seed plus every field differing from {!none}.
    Round-trips through {!parse_spec} {e exactly} —
    [parse_spec (to_spec p) = Ok p] for every valid plan, arbitrary
    float probabilities included (shortest decimal that parses back to
    the same double) — so a shrunk schedule replayed verbatim through
    the [SWITCHLESS_FAULTS] hook reproduces its run bit-for-bit. *)

(** {2 Plan knobs by key}

    Generic access to the plan fields under their spec keys, for code
    that treats plans as points in a fault space (the explorer's
    generator, mutator and shrinker) rather than as records.  All raise
    [Invalid_argument] on unknown keys or kind mismatches. *)

val prob_keys : string list
(** Every probability knob's spec key, in canonical field order. *)

val cycles_keys : string list
(** Every cycle-count knob's spec key, in canonical field order. *)

val prob : plan -> string -> float
val with_prob : plan -> string -> float -> plan
(** [with_prob p key v] — [v] must be in [\[0,1\]]. *)

val cycles : plan -> string -> int
val with_cycles : plan -> string -> int -> plan
(** [with_cycles p key v] — [v] must be non-negative. *)

(** {2 Injectors} *)

type t
(** A live injector: one plan, per-class RNG streams, hit counters. *)

val create : plan -> t

val plan : t -> plan

val counts : t -> (string * int) list
(** Faults actually injected so far, keyed by fault class (spec-key
    names), nonzero entries only, in a fixed order. *)

val count : t -> string -> int
(** Injected count for one class key, 0 if none. *)

val total_injected : t -> int

(** {2 Attaching to targets}

    Each [attach_*] installs this injector's hooks into one instance.
    Draws consume randomness only for classes with nonzero probability,
    so unrelated subsystems keep identical schedules. *)

val attach_chip : t -> Switchless.Chip.t -> unit
(** Installs the monitor delivery-drop hook, the chip spurious-wake,
    start-delay and crash-stop hooks, and a corruption hook on every
    core's state store. *)

val attach_nic : t -> Sl_dev.Nic.t -> unit
val attach_nvme : t -> Sl_dev.Nvme.t -> unit
val attach_irq : t -> Sl_baseline.Irq.t -> unit

(** {2 Ambient installation}

    Experiments build chips and devices deep inside their runners, so the
    injector can register creation hooks that attach it to every instance
    created while installed — the mechanism behind the
    [SWITCHLESS_FAULTS] env hook in [bench/main.ml]. *)

val install_ambient : t -> unit
val clear_ambient : unit -> unit

val with_ambient : t -> (unit -> 'a) -> 'a
(** Brackets [f] with {!install_ambient}/{!clear_ambient} (hooks cleared
    even if [f] raises). *)
