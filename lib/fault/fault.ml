module Rng = Sl_util.Rng
module Chip = Switchless.Chip
module Monitor = Switchless.Monitor
module State_store = Switchless.State_store
module Nic = Sl_dev.Nic
module Nvme = Sl_dev.Nvme
module Irq = Sl_baseline.Irq

type plan = {
  seed : int64;
  nic_doorbell_drop : float;
  nic_doorbell_dup : float;
  nic_dma_drop : float;
  nvme_stall : float;
  nvme_stall_cycles : int;
  mwait_lost : float;
  mwait_spurious : float;
  mwait_spurious_delay : int;
  start_delay : float;
  start_delay_cycles : int;
  store_ecc : float;
  store_silent : float;
  ipi_drop : float;
  crash_park : float;
  crash_wake : float;
  crash_park_delay : int;
  crash_restart_cycles : int;
  crash_boot_window : int;
}

let none =
  {
    seed = 1L;
    nic_doorbell_drop = 0.0;
    nic_doorbell_dup = 0.0;
    nic_dma_drop = 0.0;
    nvme_stall = 0.0;
    nvme_stall_cycles = 50_000;
    mwait_lost = 0.0;
    mwait_spurious = 0.0;
    mwait_spurious_delay = 500;
    start_delay = 0.0;
    start_delay_cycles = 2_000;
    store_ecc = 0.0;
    store_silent = 0.0;
    ipi_drop = 0.0;
    crash_park = 0.0;
    crash_wake = 0.0;
    crash_park_delay = 2_000;
    crash_restart_cycles = 25_000;
    crash_boot_window = 0;
  }

let is_active p =
  p.nic_doorbell_drop > 0.0 || p.nic_doorbell_dup > 0.0 || p.nic_dma_drop > 0.0
  || p.nvme_stall > 0.0 || p.mwait_lost > 0.0 || p.mwait_spurious > 0.0
  || p.start_delay > 0.0 || p.store_ecc > 0.0 || p.store_silent > 0.0
  || p.ipi_drop > 0.0 || p.crash_park > 0.0 || p.crash_wake > 0.0

(* --- spec strings ------------------------------------------------------- *)

(* One row per plan field: spec key, getter, setter.  The spec syntax is
   "seed=42,nic.doorbell_drop=0.01,..." — the artifact-friendly encoding
   recorded in every experiment's JSON header. *)

type field =
  | Prob of string * (plan -> float) * (plan -> float -> plan)
  | Cycles of string * (plan -> int) * (plan -> int -> plan)

let fields =
  [
    Prob
      ( "nic.doorbell_drop",
        (fun p -> p.nic_doorbell_drop),
        fun p v -> { p with nic_doorbell_drop = v } );
    Prob
      ( "nic.doorbell_dup",
        (fun p -> p.nic_doorbell_dup),
        fun p v -> { p with nic_doorbell_dup = v } );
    Prob
      ( "nic.dma_drop",
        (fun p -> p.nic_dma_drop),
        fun p v -> { p with nic_dma_drop = v } );
    Prob ("nvme.stall", (fun p -> p.nvme_stall), fun p v -> { p with nvme_stall = v });
    Cycles
      ( "nvme.stall_cycles",
        (fun p -> p.nvme_stall_cycles),
        fun p v -> { p with nvme_stall_cycles = v } );
    Prob ("mwait.lost", (fun p -> p.mwait_lost), fun p v -> { p with mwait_lost = v });
    Prob
      ( "mwait.spurious",
        (fun p -> p.mwait_spurious),
        fun p v -> { p with mwait_spurious = v } );
    Cycles
      ( "mwait.spurious_delay",
        (fun p -> p.mwait_spurious_delay),
        fun p v -> { p with mwait_spurious_delay = v } );
    Prob ("start.delay", (fun p -> p.start_delay), fun p v -> { p with start_delay = v });
    Cycles
      ( "start.delay_cycles",
        (fun p -> p.start_delay_cycles),
        fun p v -> { p with start_delay_cycles = v } );
    Prob ("store.ecc", (fun p -> p.store_ecc), fun p v -> { p with store_ecc = v });
    Prob ("store.silent", (fun p -> p.store_silent), fun p v -> { p with store_silent = v });
    Prob ("ipi.drop", (fun p -> p.ipi_drop), fun p v -> { p with ipi_drop = v });
    Prob ("crash.park", (fun p -> p.crash_park), fun p v -> { p with crash_park = v });
    Prob ("crash.wake", (fun p -> p.crash_wake), fun p v -> { p with crash_wake = v });
    Cycles
      ( "crash.park_delay",
        (fun p -> p.crash_park_delay),
        fun p v -> { p with crash_park_delay = v } );
    Cycles
      ( "crash.restart_cycles",
        (fun p -> p.crash_restart_cycles),
        fun p v -> { p with crash_restart_cycles = v } );
    Cycles
      ( "crash.boot_window",
        (fun p -> p.crash_boot_window),
        fun p v -> { p with crash_boot_window = v } );
  ]

let field_key = function Prob (k, _, _) | Cycles (k, _, _) -> k

let prob_keys =
  List.filter_map (function Prob (k, _, _) -> Some k | Cycles _ -> None) fields

let cycles_keys =
  List.filter_map (function Cycles (k, _, _) -> Some k | Prob _ -> None) fields

let find_field kind key =
  match List.find_opt (fun f -> field_key f = key) fields with
  | Some f -> f
  | None -> invalid_arg (Printf.sprintf "Fault.%s: unknown key %S" kind key)

let prob p key =
  match find_field "prob" key with
  | Prob (_, get, _) -> get p
  | Cycles _ -> invalid_arg (Printf.sprintf "Fault.prob: %S is a cycles knob" key)

let with_prob p key v =
  if not (v >= 0.0 && v <= 1.0) then
    invalid_arg (Printf.sprintf "Fault.with_prob: %S out of [0,1]" key);
  match find_field "with_prob" key with
  | Prob (_, _, set) -> set p v
  | Cycles _ ->
    invalid_arg (Printf.sprintf "Fault.with_prob: %S is a cycles knob" key)

let cycles p key =
  match find_field "cycles" key with
  | Cycles (_, get, _) -> get p
  | Prob _ -> invalid_arg (Printf.sprintf "Fault.cycles: %S is a prob knob" key)

let with_cycles p key v =
  if v < 0 then invalid_arg (Printf.sprintf "Fault.with_cycles: %S negative" key);
  match find_field "with_cycles" key with
  | Cycles (_, _, set) -> set p v
  | Prob _ ->
    invalid_arg (Printf.sprintf "Fault.with_cycles: %S is a prob knob" key)

(* Shortest decimal that parses back to exactly [f]: "%g" (6 significant
   digits) covers every hand-written probability; raw RNG-drawn doubles
   fall through to more digits until the round-trip is exact, so a spec
   replayed from its string reproduces the schedule bit-for-bit. *)
let float_repr f =
  let s = Printf.sprintf "%g" f in
  if float_of_string s = f then s
  else
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let to_spec p =
  let parts =
    Printf.sprintf "seed=%Ld" p.seed
    :: List.filter_map
         (function
           | Prob (k, get, _) ->
             if get p > 0.0 then Some (Printf.sprintf "%s=%s" k (float_repr (get p)))
             else None
           | Cycles (k, get, _) ->
             if get p <> get none then Some (Printf.sprintf "%s=%d" k (get p))
             else None)
         fields
  in
  String.concat "," parts

let parse_spec spec =
  let ( let* ) = Result.bind in
  let parse_pair acc part =
    let* p = acc in
    match String.index_opt part '=' with
    | None -> Error (Printf.sprintf "fault spec: %S is not key=value" part)
    | Some i -> (
      let key = String.trim (String.sub part 0 i) in
      let value =
        String.trim (String.sub part (i + 1) (String.length part - i - 1))
      in
      if key = "seed" then
        match Int64.of_string_opt value with
        | Some s -> Ok { p with seed = s }
        | None -> Error (Printf.sprintf "fault spec: bad seed %S" value)
      else
        match List.find_opt (fun f -> field_key f = key) fields with
        | None -> Error (Printf.sprintf "fault spec: unknown key %S" key)
        | Some (Prob (_, _, set)) -> (
          match float_of_string_opt value with
          | Some v when v >= 0.0 && v <= 1.0 -> Ok (set p v)
          | Some _ ->
            Error (Printf.sprintf "fault spec: %s=%s out of [0,1]" key value)
          | None -> Error (Printf.sprintf "fault spec: bad float %S for %s" value key))
        | Some (Cycles (_, _, set)) -> (
          match int_of_string_opt value with
          | Some v when v >= 0 -> Ok (set p v)
          | Some _ -> Error (Printf.sprintf "fault spec: %s=%s negative" key value)
          | None -> Error (Printf.sprintf "fault spec: bad int %S for %s" value key)))
  in
  String.split_on_char ',' spec
  |> List.map String.trim
  |> List.filter (fun s -> s <> "")
  |> List.fold_left parse_pair (Ok none)

(* --- the injector ------------------------------------------------------- *)

(* Counter keys, in reporting order. *)
let count_keys =
  [
    "nic.doorbell_drop";
    "nic.doorbell_dup";
    "nic.dma_drop";
    "nvme.stall";
    "mwait.lost";
    "mwait.spurious";
    "start.delay";
    "store.ecc";
    "store.silent";
    "ipi.drop";
    "crash.park";
    "crash.wake";
  ]

type t = {
  plan : plan;
  (* One independent stream per fault class, split from the seed in a
     fixed order, so adding draws in one subsystem never perturbs
     another's schedule. *)
  nic_rng : Rng.t;
  nvme_rng : Rng.t;
  mwait_rng : Rng.t;
  start_rng : Rng.t;
  store_rng : Rng.t;
  ipi_rng : Rng.t;
  crash_rng : Rng.t;
  counters : (string, int) Hashtbl.t;
}

let create plan =
  let root = Rng.create plan.seed in
  let nic_rng = Rng.split root in
  let nvme_rng = Rng.split root in
  let mwait_rng = Rng.split root in
  let start_rng = Rng.split root in
  let store_rng = Rng.split root in
  let ipi_rng = Rng.split root in
  (* Split last so pre-crash plans keep their historical streams. *)
  let crash_rng = Rng.split root in
  {
    plan;
    nic_rng;
    nvme_rng;
    mwait_rng;
    start_rng;
    store_rng;
    ipi_rng;
    crash_rng;
    counters = Hashtbl.create 16;
  }

let plan t = t.plan

let bump t key =
  Hashtbl.replace t.counters key
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.counters key))

let count t key = Option.value ~default:0 (Hashtbl.find_opt t.counters key)

let counts t =
  List.filter_map
    (fun key -> match count t key with 0 -> None | n -> Some (key, n))
    count_keys

let total_injected t = List.fold_left (fun acc (_, n) -> acc + n) 0 (counts t)

(* A Bernoulli draw that consumes no randomness when the fault class is
   disabled, so a plan exercising one class leaves every other stream —
   and therefore the simulated schedule — untouched. *)
let draw t rng key p = p > 0.0 && Rng.float rng < p && (bump t key; true)

let attach_nic t nic =
  Nic.set_faults nic
    {
      Nic.dma_drop =
        (fun ~queue:_ -> draw t t.nic_rng "nic.dma_drop" t.plan.nic_dma_drop);
      doorbell_drop =
        (fun ~queue:_ ->
          draw t t.nic_rng "nic.doorbell_drop" t.plan.nic_doorbell_drop);
      doorbell_dup =
        (fun ~queue:_ ->
          draw t t.nic_rng "nic.doorbell_dup" t.plan.nic_doorbell_dup);
    }

let attach_nvme t nvme =
  Nvme.set_stall_fault nvme (fun () ->
      if draw t t.nvme_rng "nvme.stall" t.plan.nvme_stall then
        Some t.plan.nvme_stall_cycles
      else None)

let attach_irq t irq =
  Irq.set_ipi_drop_fault irq (fun () ->
      draw t t.ipi_rng "ipi.drop" t.plan.ipi_drop)

let attach_chip t chip =
  Monitor.set_fault_hook (Chip.monitor_table chip) (fun _key _addr ->
      draw t t.mwait_rng "mwait.lost" t.plan.mwait_lost);
  (* crash.boot_window > 0 correlates the crashes: they can only land
     before that simulated instant (boot/warm-up storms), after which the
     system must recover to quiescence on its own.  The time check runs
     before the draw, so the window also gates randomness consumption. *)
  let in_crash_window () =
    t.plan.crash_boot_window = 0
    || Sl_engine.Sim.time (Chip.sim chip) < t.plan.crash_boot_window
  in
  Chip.set_fault_hooks chip
    {
      Chip.spurious_wake_after =
        (fun ~ptid:_ ->
          if draw t t.mwait_rng "mwait.spurious" t.plan.mwait_spurious then
            Some t.plan.mwait_spurious_delay
          else None);
      start_extra_cycles =
        (fun ~ptid:_ ->
          if draw t t.start_rng "start.delay" t.plan.start_delay then
            t.plan.start_delay_cycles
          else 0);
      crash_park_after =
        (fun ~ptid:_ ->
          if in_crash_window ()
             && draw t t.crash_rng "crash.park" t.plan.crash_park
          then
            Some
              ( Rng.int t.crash_rng (max 1 t.plan.crash_park_delay),
                t.plan.crash_restart_cycles )
          else None);
      crash_at_wake =
        (fun ~ptid:_ ->
          if in_crash_window ()
             && draw t t.crash_rng "crash.wake" t.plan.crash_wake
          then Some t.plan.crash_restart_cycles
          else None);
    };
  for core = 0 to Chip.core_count chip - 1 do
    State_store.set_fault_hook (Chip.state_store chip core) (fun ~ptid:_ ->
        if draw t t.store_rng "store.ecc" t.plan.store_ecc then
          Some State_store.Ecc_corrected
        else if draw t t.store_rng "store.silent" t.plan.store_silent then
          Some State_store.Silent
        else None)
  done

let chip_hook_key = "fault"

let install_ambient t =
  Chip.add_creation_hook ~key:chip_hook_key (attach_chip t);
  Nic.set_creation_hook (attach_nic t);
  Nvme.set_creation_hook (attach_nvme t);
  Irq.set_creation_hook (attach_irq t)

let clear_ambient () =
  Chip.remove_creation_hook ~key:chip_hook_key;
  Nic.clear_creation_hook ();
  Nvme.clear_creation_hook ();
  Irq.clear_creation_hook ()

let with_ambient t f =
  install_ambient t;
  match f () with
  | v ->
    clear_ambient ();
    v
  | exception e ->
    clear_ambient ();
    raise e
