module Sim = Sl_engine.Sim
module Memory = Switchless.Memory
module Params = Switchless.Params

type packet = { pkt_id : int; flow : int; injected_at : int }

type queue = {
  ring_base : Memory.addr;
  tail_addr : Memory.addr;
  ring : packet option array;
  mutable head : int;  (* consumer position (absolute count) *)
  mutable tail : int;  (* producer position (absolute count) *)
  mutable drops : int;  (* ring-full drops steered at this queue *)
}

type faults = {
  dma_drop : queue:int -> bool;
  doorbell_drop : queue:int -> bool;
  doorbell_dup : queue:int -> bool;
}

type t = {
  sim : Sim.t;
  params : Params.t;
  memory : Memory.t;
  notify : Notify.t;
  queue_depth : int;
  rx : queue array;
  mutable next_id : int;
  mutable dropped : int;
  mutable faults : faults option;
  mutable dma_dropped : int;
  mutable doorbells_dropped : int;
  mutable doorbells_duplicated : int;
}

(* Lets the fault injector attach to every NIC built inside experiment
   runners, mirroring [Chip.add_creation_hook].  Domain-local, like all
   ambient creation hooks. *)
let creation_hook : (t -> unit) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let set_creation_hook f = Domain.DLS.set creation_hook (Some f)
let clear_creation_hook () = Domain.DLS.set creation_hook None

let create sim params memory ?(notify = Notify.Silent) ?(queues = 1) ~queue_depth () =
  if queue_depth <= 0 then invalid_arg "Nic.create: queue_depth must be positive";
  if queues <= 0 then invalid_arg "Nic.create: queues must be positive";
  let make_queue () =
    {
      ring_base = Memory.alloc memory queue_depth;
      tail_addr = Memory.alloc memory 1;
      ring = Array.make queue_depth None;
      head = 0;
      tail = 0;
      drops = 0;
    }
  in
  let t =
    {
      sim;
      params;
      memory;
      notify;
      queue_depth;
      rx = Array.init queues (fun _ -> make_queue ());
      next_id = 0;
      dropped = 0;
      faults = None;
      dma_dropped = 0;
      doorbells_dropped = 0;
      doorbells_duplicated = 0;
    }
  in
  (match Domain.DLS.get creation_hook with Some f -> f t | None -> ());
  t

let set_faults t f = t.faults <- Some f
let clear_faults t = t.faults <- None

let queue_count t = Array.length t.rx
let queue_tail_addr t i = t.rx.(i).tail_addr
let rx_tail_addr t = queue_tail_addr t 0

let inject ?flow t =
  let flow = match flow with Some f -> f | None -> t.next_id in
  let q_idx = flow mod Array.length t.rx in
  let q = t.rx.(q_idx) in
  if q.tail - q.head >= t.queue_depth then begin
    t.dropped <- t.dropped + 1;
    q.drops <- q.drops + 1
  end
  else begin
    let pkt = { pkt_id = t.next_id; flow; injected_at = Sim.now () } in
    t.next_id <- t.next_id + 1;
    (* DMA of the descriptor, then the tail-pointer doorbell write. *)
    Sim.delay t.params.Params.dma_write_cycles;
    let dma_lost =
      match t.faults with Some f -> f.dma_drop ~queue:q_idx | None -> false
    in
    if dma_lost then
      (* The descriptor write was lost in the fabric: no ring entry, no
         doorbell.  The packet is gone; only the counter remembers it. *)
      t.dma_dropped <- t.dma_dropped + 1
    else begin
      let slot = q.tail mod t.queue_depth in
      q.ring.(slot) <- Some pkt;
      Memory.write t.memory (q.ring_base + slot) (Int64.of_int pkt.pkt_id);
      q.tail <- q.tail + 1;
      let bell_lost =
        match t.faults with
        | Some f -> f.doorbell_drop ~queue:q_idx
        | None -> false
      in
      if bell_lost then
        (* Descriptor landed but the tail-pointer update did not: the
           classic lost doorbell.  The data is pollable, yet nothing
           wakes a parked monitor until a later packet's doorbell. *)
        t.doorbells_dropped <- t.doorbells_dropped + 1
      else begin
        Memory.write t.memory q.tail_addr (Int64.of_int q.tail);
        (match t.faults with
        | Some f when f.doorbell_dup ~queue:q_idx ->
          (* A replayed doorbell: same tail value written twice.  The
             second write latches a pending trigger, producing a spurious
             immediate mwait return downstream. *)
          t.doorbells_duplicated <- t.doorbells_duplicated + 1;
          Memory.write t.memory q.tail_addr (Int64.of_int q.tail)
        | Some _ | None -> ());
        Notify.fire t.sim t.params t.memory t.notify
      end
    end
  end

let poll_queue t i =
  let q = t.rx.(i) in
  if q.head >= q.tail then None
  else begin
    let slot = q.head mod t.queue_depth in
    let pkt = q.ring.(slot) in
    q.ring.(slot) <- None;
    q.head <- q.head + 1;
    pkt
  end

let poll t = poll_queue t 0

let pending_queue t i = t.rx.(i).tail - t.rx.(i).head

let pending t =
  Array.fold_left (fun acc q -> acc + (q.tail - q.head)) 0 t.rx

let delivered t = Array.fold_left (fun acc q -> acc + q.tail) 0 t.rx

let dropped t = t.dropped
let dropped_queue t i = t.rx.(i).drops
let dma_dropped t = t.dma_dropped
let doorbells_dropped t = t.doorbells_dropped
let doorbells_duplicated t = t.doorbells_duplicated
