module Sim = Sl_engine.Sim
module Memory = Switchless.Memory

type t = {
  sim : Sim.t;
  params : Switchless.Params.t;
  memory : Memory.t;
  notify : Notify.t;
  period : int;
  count_addr : Memory.addr;
  mutable running : bool;
  mutable ticks : int;
}

let create sim params memory ?(notify = Notify.Silent) ~period () =
  if period < 1 then invalid_arg "Apic_timer.create: period must be >= 1";
  {
    sim;
    params;
    memory;
    notify;
    period;
    count_addr = Memory.alloc memory 1;
    running = false;
    ticks = 0;
  }

let count_addr t = t.count_addr

let start t =
  if not t.running then begin
    t.running <- true;
    Sim.spawn t.sim (fun () ->
        let rec tick () =
          Sim.delay t.period;
          if t.running then begin
            t.ticks <- t.ticks + 1;
            Memory.write t.memory t.count_addr (Int64.of_int t.ticks);
            Notify.fire t.sim t.params t.memory t.notify;
            tick ()
          end
        in
        tick ())
  end

let stop t = t.running <- false

let ticks t = t.ticks
