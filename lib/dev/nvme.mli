(** NVMe-style storage device: submission → latency → completion DMA.

    Commands complete after a configurable device latency (fixed or
    sampled), writing a completion entry and bumping the in-memory
    completion-queue tail — again an ordinary memory write, so the
    storage thread of a switchless kernel just monitors {!cq_tail_addr}. *)

type completion = {
  cmd_id : int;
  submitted_at : Sl_engine.Sim.Time.t;
  completed_at : Sl_engine.Sim.Time.t;
}

type t

val create :
  Sl_engine.Sim.t -> Switchless.Params.t -> Switchless.Memory.t ->
  ?notify:Notify.t -> ?queue_depth:int ->
  latency:Sl_util.Dist.t -> rng:Sl_util.Rng.t -> unit -> t

val cq_tail_addr : t -> Switchless.Memory.addr

val submit : t -> int
(** Issue one command; returns its id.  Must be called from a process
    (pays the doorbell write).  The completion arrives asynchronously
    after the device latency.  Raises [Invalid_argument] when the queue
    is full. *)

val in_flight : t -> int

val poll_completion : t -> completion option

val completed : t -> int

(** {2 Fault injection} *)

val set_stall_fault : t -> (unit -> int option) -> unit
(** Install a completion-stall sampler, consulted once per {!submit}:
    [Some extra] stretches that command's device latency by [extra]
    cycles (a firmware hiccup or retried media operation).  Installed by
    [Sl_fault.Fault]; at most one. *)

val clear_stall_fault : t -> unit

val stall_count : t -> int
val stall_cycles_total : t -> int

val set_creation_hook : (t -> unit) -> unit
(** Global hook invoked on every {!create} (see [Nic.set_creation_hook]). *)

val clear_creation_hook : unit -> unit
