module Sim = Sl_engine.Sim
module Memory = Switchless.Memory
module Params = Switchless.Params

type completion = { cmd_id : int; submitted_at : int; completed_at : int }

type t = {
  sim : Sim.t;
  params : Params.t;
  memory : Memory.t;
  notify : Notify.t;
  queue_depth : int;
  latency : Sl_util.Dist.t;
  rng : Sl_util.Rng.t;
  cq_tail_addr : Memory.addr;
  completions : completion Queue.t;
  mutable next_id : int;
  mutable in_flight : int;
  mutable completed : int;
  mutable stall_fault : (unit -> int option) option;
  mutable stalls : int;
  mutable stall_cycles_total : int;
}

(* Lets the fault injector attach to every NVMe device built inside
   experiment runners, mirroring [Chip.add_creation_hook].  Domain-local,
   like all ambient creation hooks. *)
let creation_hook : (t -> unit) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let set_creation_hook f = Domain.DLS.set creation_hook (Some f)
let clear_creation_hook () = Domain.DLS.set creation_hook None

let create sim params memory ?(notify = Notify.Silent) ?(queue_depth = 64) ~latency ~rng () =
  if queue_depth <= 0 then invalid_arg "Nvme.create: queue_depth must be positive";
  let t =
    {
      sim;
      params;
      memory;
      notify;
      queue_depth;
      latency;
      rng;
      cq_tail_addr = Memory.alloc memory 1;
      completions = Queue.create ();
      next_id = 0;
      in_flight = 0;
      completed = 0;
      stall_fault = None;
      stalls = 0;
      stall_cycles_total = 0;
    }
  in
  (match Domain.DLS.get creation_hook with Some f -> f t | None -> ());
  t

let set_stall_fault t f = t.stall_fault <- Some f
let clear_stall_fault t = t.stall_fault <- None
let stall_count t = t.stalls
let stall_cycles_total t = t.stall_cycles_total

let cq_tail_addr t = t.cq_tail_addr

let submit t =
  if t.in_flight >= t.queue_depth then invalid_arg "Nvme.submit: queue full";
  let id = t.next_id in
  t.next_id <- t.next_id + 1;
  t.in_flight <- t.in_flight + 1;
  let submitted_at = Sim.now () in
  (* Doorbell MMIO write. *)
  Sim.delay t.params.Params.nic_doorbell_cycles;
  let service = int_of_float (Sl_util.Dist.sample t.latency t.rng) in
  let service = if service < 1 then 1 else service in
  (* Fault injection, sampled at submission so the draw order is
     deterministic: a completion stall stretches this command's device
     latency (firmware hiccup, retried media op, deep power state). *)
  let stall =
    match t.stall_fault with
    | Some f -> (
      match f () with
      | Some extra when extra > 0 ->
        t.stalls <- t.stalls + 1;
        t.stall_cycles_total <- t.stall_cycles_total + extra;
        extra
      | Some _ | None -> 0)
    | None -> 0
  in
  Sim.fork (fun () ->
      Sim.delay (service + stall);
      Sim.delay t.params.Params.dma_write_cycles;
      t.in_flight <- t.in_flight - 1;
      t.completed <- t.completed + 1;
      Queue.push { cmd_id = id; submitted_at; completed_at = Sim.now () } t.completions;
      Memory.write t.memory t.cq_tail_addr (Int64.of_int t.completed);
      Notify.fire t.sim t.params t.memory t.notify);
  id

let in_flight t = t.in_flight

let poll_completion t = Queue.take_opt t.completions

let completed t = t.completed
