(** Local APIC timer, §2 "No More Interrupts" style.

    Instead of (or in addition to) raising an interrupt, each expiry
    increments an in-memory tick counter.  A kernel scheduler thread can
    monitor that counter — the paper's replacement for the timer IRQ. *)

type t

val create :
  Sl_engine.Sim.t -> Switchless.Params.t -> Switchless.Memory.t ->
  ?notify:Notify.t -> period:Sl_engine.Sim.Time.t -> unit -> t

val count_addr : t -> Switchless.Memory.addr
(** The monitored tick-counter word. *)

val start : t -> unit
(** Begin ticking (first expiry one period from now). *)

val stop : t -> unit
(** Cease future expiries. *)

val ticks : t -> int
