module Sim = Sl_engine.Sim
module Memory = Switchless.Memory
module Params = Switchless.Params

type t =
  | Silent
  | Msix of Memory.addr
  | Irq_line of (unit -> unit)

let fire _sim params memory = function
  | Silent -> ()
  | Msix addr ->
    Sim.delay params.Params.msix_translation_cycles;
    let v = Memory.read memory addr in
    Memory.write memory addr (Int64.add v 1L)
  | Irq_line raise_line -> raise_line ()
