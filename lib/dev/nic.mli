(** Network interface model: RX descriptor rings + DMA + tail doorbells.

    On packet arrival the device DMAs a descriptor into an in-memory ring,
    then advances that ring's in-memory tail pointer.  Because both are
    ordinary {!Switchless.Memory.write}s, a hardware thread monitoring the
    ring's tail wakes exactly as §2 "Fast I/O without Inefficient Polling"
    describes — and a polling thread can instead read the tail, and a
    legacy configuration can raise an interrupt.

    The device supports multiple RX queues (RSS-style): packets are
    steered to a queue by flow hash, so one hardware thread can park on
    each queue — the paper's §4 suggestion of offloading dispatch to the
    NIC.  The single-queue API ({!rx_tail_addr}, {!poll}) operates on
    queue 0 and is what most callers use. *)

type packet = {
  pkt_id : int;
  flow : int;  (** Flow label used for queue steering. *)
  injected_at : Sl_engine.Sim.Time.t;  (** Cycle of arrival at the device. *)
}

type t

val create :
  Sl_engine.Sim.t -> Switchless.Params.t -> Switchless.Memory.t ->
  ?notify:Notify.t -> ?queues:int -> queue_depth:int -> unit -> t
(** [queues] (default 1) RX queues, each of [queue_depth] descriptors. *)

val queue_count : t -> int

val rx_tail_addr : t -> Switchless.Memory.addr
(** Queue 0's tail word — the monitor target for single-queue setups. *)

val queue_tail_addr : t -> int -> Switchless.Memory.addr

val inject : ?flow:int -> t -> unit
(** One packet with the given flow label (default: consecutive ids, i.e.
    round-robin across queues) arrives now.  Must be called from a
    process (the DMA takes [dma_write_cycles]).  Dropped (counted) when
    the steered ring is full. *)

val poll : t -> packet option
(** Take the next descriptor from queue 0, if any. *)

val poll_queue : t -> int -> packet option

val pending : t -> int
(** Descriptors delivered but unconsumed, across all queues. *)

val pending_queue : t -> int -> int
val delivered : t -> int

val dropped : t -> int
(** Ring-full drops across all queues. *)

val dropped_queue : t -> int -> int
(** Ring-full drops whose packet was steered at the given queue;
    queue-wise these sum to {!dropped}. *)

(** {2 Fault injection}

    Installed per NIC by [Sl_fault.Fault].  Each predicate is sampled once
    per injected packet at the relevant point of the DMA + doorbell
    sequence. *)

type faults = {
  dma_drop : queue:int -> bool;
      (** Descriptor DMA lost in the fabric: no ring entry, no doorbell —
          the packet vanishes (counted in {!dma_dropped}). *)
  doorbell_drop : queue:int -> bool;
      (** Descriptor lands but the tail-pointer write is lost: data is
          pollable yet no monitor wakes until the next doorbell. *)
  doorbell_dup : queue:int -> bool;
      (** The tail write is replayed (same value twice), latching a
          spurious pending trigger for the monitoring thread. *)
}

val set_faults : t -> faults -> unit
val clear_faults : t -> unit

val dma_dropped : t -> int
(** Packets lost to an injected descriptor-DMA drop (never counted in
    {!delivered} or {!dropped}). *)

val doorbells_dropped : t -> int
val doorbells_duplicated : t -> int

val set_creation_hook : (t -> unit) -> unit
(** Global hook invoked on every {!create}, so the fault injector can
    attach to NICs built deep inside experiment runners.  At most one. *)

val clear_creation_hook : unit -> unit
