(* A multi-tenant key-value store on hardware threads.

   Capstone demo combining the pieces: requests from two tenants are
   steered by the hardware dispatch unit (§4, Carbon-style) to a pool of
   worker hardware threads parked in mwait; workers share the pipeline
   processor-sharing style; and §4's per-thread resource accounting
   produces the cloud bill at the end.  No interrupts, no software
   scheduler, no polling.

   Run with: dune exec examples/kv_store.exe *)

module Sim = Sl_engine.Sim
module Chip = Switchless.Chip
module Isa = Switchless.Isa
module Ptid = Switchless.Ptid
module Params = Switchless.Params
module Smt_core = Switchless.Smt_core
module Hw_dispatch = Switchless.Hw_dispatch
module Histogram = Sl_util.Histogram
module Tablefmt = Sl_util.Tablefmt
module Openloop = Sl_workload.Openloop

type op = Get | Put

type request = { tenant : int; op : op; key : int; arrival : int }

let () =
  let params = Params.default in
  let sim = Sim.create () in
  let chip = Chip.create sim params ~cores:1 in
  let store : (int, int64) Hashtbl.t = Hashtbl.create 1024 in
  let dispatch = Hw_dispatch.create chip ~core:0 ~policy:Hw_dispatch.Lifo () in

  (* Request table: the dispatch payload indexes into it. *)
  let requests : (int, request) Hashtbl.t = Hashtbl.create 1024 in
  let next_req = ref 0 in

  let tenants = 2 in
  let per_tenant_cycles = Array.make tenants 0.0 in
  let per_tenant_lat = Array.init tenants (fun _ -> Histogram.create ()) in
  let get_cycles = 300 and put_cycles = 600 in

  (* Worker pool. *)
  let workers = 32 in
  for i = 1 to workers do
    let th = Chip.add_thread chip ~core:0 ~ptid:i ~mode:Ptid.User () in
    Chip.attach th (fun th ->
        Hw_dispatch.worker_loop dispatch th (fun payload ->
            let req = Hashtbl.find requests (Int64.to_int payload) in
            let cost =
              match req.op with
              | Get ->
                ignore (Hashtbl.find_opt store req.key);
                get_cycles
              | Put ->
                Hashtbl.replace store req.key payload;
                put_cycles
            in
            Isa.exec th cost;
            per_tenant_cycles.(req.tenant) <-
              per_tenant_cycles.(req.tenant) +. float_of_int cost;
            Histogram.record per_tenant_lat.(req.tenant)
              (Sim.now () - req.arrival)));
    Chip.boot th
  done;

  (* Two tenants with different mixes and rates. *)
  let rng = Sl_util.Rng.create 77L in
  let submit ~tenant ~op ~key =
    let id = !next_req in
    incr next_req;
    Hashtbl.replace requests id { tenant; op; key; arrival = Sim.now () };
    Hw_dispatch.submit dispatch (Int64.of_int id)
  in
  let tenant_gen ~tenant ~rate ~count ~put_ratio =
    let trng = Sl_util.Rng.split rng in
    Openloop.run sim trng
      ~interarrival:(Openloop.poisson ~rate_per_kcycle:rate)
      ~service:(Sl_util.Dist.Constant 0.0) ~count
      ~sink:(fun _ ->
        let op = if Sl_util.Rng.float trng < put_ratio then Put else Get in
        submit ~tenant ~op ~key:(Sl_util.Rng.int trng 512))
  in
  tenant_gen ~tenant:0 ~rate:1.5 ~count:3000 ~put_ratio:0.1;  (* read-mostly *)
  tenant_gen ~tenant:1 ~rate:0.5 ~count:1000 ~put_ratio:0.9;  (* write-heavy *)
  Sim.run sim;

  print_endline "multi-tenant KV store on hardware threads (32-worker pool)";
  let rows =
    List.init tenants (fun t ->
        [
          Tablefmt.String (Printf.sprintf "tenant %d" t);
          Tablefmt.Int (Histogram.count per_tenant_lat.(t));
          Tablefmt.Int (Histogram.quantile per_tenant_lat.(t) 0.5);
          Tablefmt.Int (Histogram.quantile per_tenant_lat.(t) 0.99);
          Tablefmt.Float (per_tenant_cycles.(t) /. 1000.0);
        ])
  in
  Tablefmt.print
    (Tablefmt.render ~title:"per-tenant service and bill"
       ~header:[ "tenant"; "requests"; "p50 (cyc)"; "p99 (cyc)"; "billed kcycles" ]
       rows);
  (* The hardware's own per-thread meters (§4 billing support). *)
  let core = Chip.exec_core chip 0 in
  let top_workers =
    Smt_core.billed_threads core
    |> List.sort (fun (_, a) (_, b) -> compare b a)
    |> fun l -> List.filteri (fun i _ -> i < 3) l
  in
  print_endline "hardware per-thread meters (top 3 workers):";
  List.iter
    (fun (ptid, cycles) -> Printf.printf "  worker ptid %2d: %.0f cycles\n" ptid cycles)
    top_workers;
  Printf.printf "store size: %d keys | dispatches: %d | chip wakeups: %d\n"
    (Hashtbl.length store) (Hw_dispatch.dispatched dispatch)
    (Chip.stats chip).Chip.total_wakeups
