(* A microkernel file-system service on hardware threads (§2 "Faster
   Microkernels").

   The FS service is an *unprivileged* hardware thread running a real
   little file system (inodes, block cache, write-through) over an NVMe
   device.  An application invokes it by direct hardware-thread IPC; the
   service's block I/O parks on the NVMe completion-queue tail — no
   interrupt, no scheduler, no polling anywhere in the stack:

     app --start--> FS service --doorbell--> NVMe
     app <--wake--- FS service <--DMA write--- NVMe

   Run with: dune exec examples/microkernel_fs.exe *)

module Sim = Sl_engine.Sim
module Chip = Switchless.Chip
module Isa = Switchless.Isa
module Ptid = Switchless.Ptid
module Params = Switchless.Params
module Hw_channel = Sl_os.Hw_channel
module Minifs = Sl_os.Minifs
module Nvme = Sl_dev.Nvme
module Histogram = Sl_util.Histogram

(* FS opcodes carried in the IPC request word: op * 2^32 + argument. *)
let op_create = 1
let op_append = 2
let op_read = 3

let encode ~op ~arg = (op lsl 32) lor arg
let decode w = (Int64.to_int (Int64.shift_right_logical w 32), Int64.to_int (Int64.logand w 0xFFFFFFFFL))

let () =
  let params = Params.default in
  let sim = Sim.create () in
  let chip = Chip.create sim params ~cores:2 in
  let rng = Sl_util.Rng.create 42L in
  let nvme =
    Nvme.create sim params (Chip.memory chip) ~queue_depth:256
      ~latency:(Sl_util.Dist.Lognormal { mu = 9.2; sigma = 0.3 }) (* ~10k cycles *)
      ~rng ()
  in
  let fs = Minifs.create chip nvme ~cache_blocks:32 () in

  (* The FS service thread: decodes the request word, runs the operation
     (whose block I/O sleeps on the CQ tail). *)
  let file_of_arg arg = Printf.sprintf "log.%d" arg in
  let service =
    Hw_channel.create chip ~core:1 ~server_ptid:100 ~mode:Ptid.User
      ~on_request:(fun th request ->
        let op, arg = decode request in
        if op = op_create then Minifs.mkfile fs th ~name:(file_of_arg arg)
        else if op = op_append then
          Minifs.append fs th ~name:(file_of_arg (arg mod 8)) ~bytes:4096
        else if op = op_read then
          ignore (Minifs.read fs th ~name:(file_of_arg (arg mod 8)))
        else ())
      ()
  in

  let append_lat = Histogram.create () and read_lat = Histogram.create () in
  let app = Chip.add_thread chip ~core:0 ~ptid:1 ~mode:Ptid.User () in
  Hw_channel.grant service ~client:app ~vtid:5;
  Chip.attach app (fun th ->
      let call ~op ~arg hist =
        let t0 = Sim.now () in
        Hw_channel.call service ~client:th ~via:5 ~work:(encode ~op ~arg) ();
        Histogram.record hist (Sim.now () - t0)
      in
      for f = 0 to 7 do
        call ~op:op_create ~arg:f append_lat
      done;
      for i = 0 to 63 do
        call ~op:op_append ~arg:i append_lat;
        Isa.exec th 1000
      done;
      for i = 0 to 127 do
        call ~op:op_read ~arg:i read_lat;
        Isa.exec th 500
      done);
  Chip.boot app;
  Sim.run sim;

  print_endline "microkernel FS over NVMe (hardware-thread IPC, zero interrupts)";
  Printf.printf "  files: %s\n" (String.concat " " (Minifs.list_files fs));
  (match Minifs.stat fs ~name:"log.0" with
  | Some (size, blocks) -> Printf.printf "  log.0: %d bytes in %d blocks\n" size blocks
  | None -> ());
  Printf.printf "  append latency: %s\n"
    (Format.asprintf "%a" Histogram.pp_summary append_lat);
  Printf.printf "  read latency:   %s (cache hits %d, misses %d)\n"
    (Format.asprintf "%a" Histogram.pp_summary read_lat)
    (Minifs.cache_hits fs) (Minifs.cache_misses fs);
  Printf.printf "  device ops: %d reads, %d writes | NVMe completions: %d\n"
    (Minifs.device_reads fs) (Minifs.device_writes fs) (Nvme.completed nvme);
  let s = Chip.stats chip in
  Printf.printf "  chip: %d mwait wakeups, %d thread starts, 0 interrupts taken\n"
    s.Chip.total_wakeups s.Chip.total_starts;
  let fs_core = Chip.exec_core chip 1 in
  Printf.printf "  FS core poll cycles: %.0f (the service sleeps, never spins)\n"
    (Switchless.Smt_core.work_done fs_core Switchless.Smt_core.Poll)
