(* NIC wakeup, three ways (§2 "Fast I/O without Inefficient Polling").

   The same Poisson packet stream is served by an interrupt-driven
   kernel, a busy-polling core, and an mwait-parked hardware thread.
   The table shows the paper's predicted shape: mwait gets polling-class
   latency at interrupt-class efficiency.

   Run with: dune exec examples/nic_wakeup.exe *)

module Io_path = Sl_os.Io_path
module Histogram = Sl_util.Histogram
module Tablefmt = Sl_util.Tablefmt

let () =
  let cfg =
    {
      Io_path.default_config with
      Io_path.count = 3000;
      rate_per_kcycle = 0.4;
      per_packet_work = 500;
      background = true;
    }
  in
  let designs =
    [
      ("interrupt", Io_path.run_interrupt cfg);
      ("polling", Io_path.run_polling cfg);
      ("mwait (paper)", Io_path.run_mwait cfg);
    ]
  in
  let rows =
    List.map
      (fun (name, s) ->
        [
          Tablefmt.String name;
          Tablefmt.Int s.Io_path.processed;
          Tablefmt.Int (Histogram.quantile s.Io_path.latencies 0.5);
          Tablefmt.Int (Histogram.quantile s.Io_path.latencies 0.99);
          Tablefmt.Float (100.0 *. Io_path.wasted_fraction s);
          Tablefmt.Float (s.Io_path.background_cycles /. 1.0e6);
        ])
      designs
  in
  Tablefmt.print
    (Tablefmt.render
       ~title:"NIC RX path at ~20% load, 500-cycle packets, with background job"
       ~header:
         [ "design"; "packets"; "p50 (cyc)"; "p99 (cyc)"; "wasted %"; "bg Mcycles" ]
       rows);
  print_endline
    "Expected shape: mwait p99 within ~2x of polling; interrupt p99 >> both;\n\
     polling wastes most of a core while mwait waste is near zero."
