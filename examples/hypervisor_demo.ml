(* An untrusted hypervisor (§2 "Untrusted Hypervisors").

   The hypervisor runs in *user mode* on its own hardware thread.  When
   the guest executes a privileged instruction (here: wrmsr-style writes
   modelled as faults), hardware writes an exception descriptor and
   disables the guest; the hypervisor — monitoring the descriptor —
   wakes, emulates the instruction by editing the guest's registers with
   rpush, and restarts it.  At no point does the hypervisor hold kernel
   privilege.

   Run with: dune exec examples/hypervisor_demo.exe *)

module Sim = Sl_engine.Sim
module Chip = Switchless.Chip
module Isa = Switchless.Isa
module Ptid = Switchless.Ptid
module Tdt = Switchless.Tdt
module Params = Switchless.Params
module Memory = Switchless.Memory
module Regstate = Switchless.Regstate
module Exception_desc = Switchless.Exception_desc
module Welford = Sl_util.Welford

let () =
  let params = Params.default in
  let sim = Sim.create () in
  let chip = Chip.create sim params ~cores:2 in
  let memory = Chip.memory chip in
  let desc = Memory.alloc memory Exception_desc.size_words in
  let exit_latency = Welford.create () in

  (* Guest: computes, then hits a privileged instruction; repeat. *)
  let guest = Chip.add_thread chip ~core:0 ~ptid:1 ~mode:Ptid.User () in
  Regstate.set (Chip.regs guest) Regstate.Exception_descriptor_ptr (Int64.of_int desc);
  Chip.attach guest (fun th ->
      for msr = 1 to 50 do
        Isa.exec th 5_000;
        let t0 = Sim.now () in
        (* "wrmsr msr, value": privileged — traps to the hypervisor. *)
        Isa.fault th Exception_desc.Privileged_instruction ~info:(Int64.of_int msr);
        Welford.add exit_latency (float_of_int (Sim.now () - t0))
      done);

  (* Hypervisor: user-mode, owns a TDT naming only the guest. *)
  let hyp = Chip.add_thread chip ~core:1 ~ptid:2 ~mode:Ptid.User () in
  let table = Tdt.create () in
  Tdt.set table ~vtid:1 ~ptid:1 (Tdt.perms_of_bits 0b1111);
  Chip.set_tdt hyp table;
  let emulated = ref 0 in
  Chip.attach hyp (fun th ->
      Isa.monitor th desc;
      let rec serve () =
        let _ = Isa.mwait th in
        let d = Exception_desc.read memory ~base:desc in
        (* Emulate: 200 cycles of decode + state edit via rpush. *)
        Isa.exec th 200;
        Isa.rpush th ~vtid:1 (Regstate.Gp 11) d.Exception_desc.info;
        incr emulated;
        Isa.start th ~vtid:1;
        serve ()
      in
      serve ());
  Chip.boot hyp;
  Chip.boot guest;
  Sim.run sim;

  Printf.printf "untrusted hypervisor demo: 50 privileged-instruction exits\n";
  Printf.printf "  hypervisor mode: %s (never privileged)\n"
    (Format.asprintf "%a" Ptid.pp_mode (Chip.mode hyp));
  Printf.printf "  emulated exits: %d\n" !emulated;
  Printf.printf "  guest-observed exit latency: mean %.0f cycles (min %.0f, max %.0f)\n"
    (Welford.mean exit_latency)
    (Welford.min_value exit_latency)
    (Welford.max_value exit_latency);
  Printf.printf "  last emulated msr landed in guest gp11 = %Ld\n"
    (Regstate.get (Chip.regs guest) (Regstate.Gp 11));
  Printf.printf "  (KVM-style in-kernel exits cost ~%d cycles and need ring 0)\n"
    (Sl_baseline.Ctx_cost.vmexit_roundtrip_cycles params)
