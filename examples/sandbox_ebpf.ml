(* Sandboxed eBPF-style filters on hardware threads (§2 "Untrusted
   Hypervisors", last paragraph).

   Today eBPF programs run inside the kernel under a restrictive verifier
   because a fault in kernel context is fatal.  With hardware threads,
   the filter runs in its own *user-mode* thread: the kernel's network
   thread hands each packet over with a direct hardware-thread call
   (~60-cycle tax), and a filter that crashes merely disables itself —
   the kernel observes the exception descriptor, counts the failure and
   reloads the filter, having never been at risk.

   Run with: dune exec examples/sandbox_ebpf.exe *)

module Sim = Sl_engine.Sim
module Chip = Switchless.Chip
module Isa = Switchless.Isa
module Ptid = Switchless.Ptid
module Params = Switchless.Params
module Memory = Switchless.Memory
module Regstate = Switchless.Regstate
module Exception_desc = Switchless.Exception_desc
module Hw_channel = Sl_os.Hw_channel

let () =
  let params = Params.default in
  let sim = Sim.create () in
  let chip = Chip.create sim params ~cores:2 in
  let memory = Chip.memory chip in

  let packets = 400 in
  let filter_cost = 120 in
  let crash_every = 100 in

  (* The untrusted filter: ordinary work, except that it divides by zero
     on every 100th packet. *)
  let filtered = ref 0 in
  let filter =
    Hw_channel.create chip ~core:1 ~server_ptid:50 ~mode:Ptid.User
      ~on_request:(fun th pkt ->
        if Int64.to_int pkt mod crash_every = crash_every - 1 then
          (* Bug: divide error inside the sandbox. *)
          Isa.fault th Exception_desc.Divide_error ~info:pkt
        else begin
          Isa.exec th filter_cost;
          incr filtered
        end)
      ()
  in

  (* The kernel supervises the sandbox: its exception descriptors land
     here, and the kernel thread repairs + restarts the filter. *)
  let desc = Memory.alloc memory Exception_desc.size_words in
  let filter_thread = Chip.find_thread chip ~ptid:50 in
  Regstate.set (Chip.regs filter_thread) Regstate.Exception_descriptor_ptr
    (Int64.of_int desc);
  let crashes = ref 0 in
  let warden = Chip.add_thread chip ~core:0 ~ptid:2 ~mode:Ptid.Supervisor () in
  Chip.attach warden (fun th ->
      Isa.monitor th desc;
      let rec serve () =
        let _ = Isa.mwait th in
        let d = Exception_desc.read memory ~base:desc in
        incr crashes;
        (* "Reload" the filter: clear its registers, restart it.  The
           channel's pending response is completed by the restart because
           the filter resumes right after its fault point. *)
        Isa.exec th 200;
        Isa.rpush th ~vtid:d.Exception_desc.ptid (Regstate.Gp 0) 0L;
        Isa.start th ~vtid:d.Exception_desc.ptid;
        serve ()
      in
      serve ());
  Chip.boot warden;

  (* The kernel network thread pushes every packet through the filter. *)
  let kernel = Chip.add_thread chip ~core:0 ~ptid:1 ~mode:Ptid.Supervisor () in
  let t0 = ref 0 and t_end = ref 0 in
  Chip.attach kernel (fun th ->
      t0 := Sim.now ();
      for pkt = 1 to packets do
        Hw_channel.call filter ~client:th ~work:pkt ();
        (* Kernel-side per-packet processing. *)
        Isa.exec th 300
      done;
      t_end := Sim.now ());
  Chip.boot kernel;
  Sim.run sim;

  let total = float_of_int (!t_end - !t0) in
  Printf.printf "sandboxed eBPF filter: %d packets through a user-mode filter thread\n"
    packets;
  Printf.printf "  filtered OK: %d | sandbox crashes contained: %d\n" !filtered !crashes;
  Printf.printf "  cycles/packet end-to-end: %.0f (filter %d + kernel 300 + ~70 hand-off)\n"
    (total /. float_of_int packets)
    filter_cost;
  Printf.printf "  kernel privilege ever granted to the filter: none (mode = %s)\n"
    (Format.asprintf "%a" Ptid.pp_mode (Chip.mode filter_thread));
  Printf.printf "  chip halted: %s\n"
    (match Chip.halted chip with None -> "no - faults stayed in the sandbox" | Some r -> r)
