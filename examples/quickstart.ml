(* Quickstart: the §3.1 ISA in thirty lines.

   Two hardware threads on one core: [worker] parks on a doorbell with
   monitor/mwait; [boss] prepares the worker's registers with rpush,
   rings the doorbell with an ordinary store, and later stops the worker
   mid-flight and inspects it with rpull.

   Run with: dune exec examples/quickstart.exe *)

module Sim = Sl_engine.Sim
module Chip = Switchless.Chip
module Isa = Switchless.Isa
module Memory = Switchless.Memory
module Ptid = Switchless.Ptid
module Regstate = Switchless.Regstate
module Params = Switchless.Params

let () =
  let sim = Sim.create () in
  let chip = Chip.create sim Params.default ~cores:1 in
  let memory = Chip.memory chip in
  let doorbell = Memory.alloc memory 1 in

  let log fmt = Printf.printf ("[%8d] " ^^ fmt ^^ "\n") (Sim.time sim) in

  (* A worker hardware thread: waits on the doorbell, then computes. *)
  let worker = Chip.add_thread chip ~core:0 ~ptid:2 ~mode:Ptid.User () in
  Chip.attach worker (fun th ->
      Isa.monitor th doorbell;
      let hit = Isa.mwait th in
      log "worker: woken by a write to %#x" hit;
      let budget = Regstate.get (Chip.regs worker) (Regstate.Gp 0) in
      log "worker: boss left %Ld cycles of work in gp0" budget;
      Isa.exec th (Int64.to_int budget);
      log "worker: done");

  (* A supervisor thread that manages the worker. *)
  let boss = Chip.add_thread chip ~core:0 ~ptid:1 ~mode:Ptid.Supervisor () in
  Chip.attach boss (fun th ->
      (* The worker is disabled: we may write its registers remotely. *)
      Isa.rpush th ~vtid:2 (Regstate.Gp 0) 5000L;
      Isa.start th ~vtid:2;
      log "boss: worker started";
      Sim.delay 100;
      Isa.store th doorbell 1L;
      log "boss: doorbell rung";
      (* Let it run a while, then freeze and inspect it. *)
      Sim.delay 2000;
      Isa.stop th ~vtid:2;
      log "boss: worker frozen mid-computation";
      let pc = Isa.rpull th ~vtid:2 Regstate.Rip in
      log "boss: worker rip=%Ld (rpull of a disabled thread)" pc;
      Sim.delay 500;
      Isa.start th ~vtid:2;
      log "boss: worker resumed");

  Chip.boot boss;
  Sim.run sim;
  let stats = Chip.stats chip in
  Printf.printf
    "\nfinal time: %d cycles | wakeups: %d | starts: %d | demotions: %d\n"
    (Sim.time sim) stats.Chip.total_wakeups stats.Chip.total_starts
    stats.Chip.demotions
