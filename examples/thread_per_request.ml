(* Thread-per-request servers and latency hiding (§2 "Simpler Distributed
   Programming").

   Part 1 — latency hiding: a distributed client issues blocking RPCs.
   With one hardware thread the core idles during every round trip; with
   64 threads the same core overlaps them — plain blocking code, no event
   loop, no software scheduler.

   Part 2 — tail latency: an open-loop server with high service-time
   dispersion (CV² = 16), thread-per-request.  Software threads
   multiplexed FCFS make short requests wait behind long ones; hardware
   threads shared processor-style keep the slowdown tail flat.

   Run with: dune exec examples/thread_per_request.exe *)

module Sim = Sl_engine.Sim
module Chip = Switchless.Chip
module Isa = Switchless.Isa
module Ptid = Switchless.Ptid
module Params = Switchless.Params
module Rpc = Sl_dist.Rpc
module Server = Sl_dist.Server
module Tablefmt = Sl_util.Tablefmt

let latency_hiding () =
  print_endline "-- part 1: hiding a 5000-cycle RPC round trip --";
  let throughput n_threads =
    let sim = Sim.create () in
    let chip = Chip.create sim Params.default ~cores:1 in
    let rng = Sl_util.Rng.create 7L in
    let remote =
      Rpc.create_remote chip ~rtt:(Sl_util.Dist.Exponential 5000.0) ~server_work:0 ~rng
    in
    for i = 1 to n_threads do
      let session = Rpc.session remote in
      let client = Chip.add_thread chip ~core:0 ~ptid:i ~mode:Ptid.User () in
      Chip.attach client (fun th ->
          for _ = 1 to 20 do
            Rpc.call session ~client:th;
            Isa.exec th 250
          done);
      Chip.boot client
    done;
    Sim.run sim;
    1.0e6 *. float_of_int (Rpc.completed remote) /. float_of_int (Sim.time sim)
  in
  List.iter
    (fun n -> Printf.printf "  %4d blocking threads: %8.1f RPCs per Mcycle\n" n (throughput n))
    [ 1; 4; 16; 64 ]

let tail_latency () =
  print_endline "\n-- part 2: p99 slowdown, bimodal service (CV^2 = 16), 2 cores --";
  let cfg =
    {
      Server.params = Params.default;
      seed = 11L;
      cores = 2;
      rate_per_kcycle = 0.6;
      service = Sl_util.Dist.bimodal_with_cv2 ~mean:2000.0 ~cv2:16.0 ~p_long:0.02;
      count = 3000;
    }
  in
  let sw = Server.run_software cfg in
  let rr = Server.run_software ~quantum:1000 cfg in
  let hw = Server.run_hw_pool cfg in
  let row name (s : Server.stats) =
    [
      Tablefmt.String name;
      Tablefmt.Int s.Server.completed;
      Tablefmt.Float (Server.percentile s.Server.slowdowns 0.5);
      Tablefmt.Float (Server.percentile s.Server.slowdowns 0.99);
      Tablefmt.Float (s.Server.switch_overhead_cycles /. 1.0e6);
    ]
  in
  Tablefmt.print
    (Tablefmt.render ~title:"thread-per-request server"
       ~header:[ "design"; "done"; "p50 slowdown"; "p99 slowdown"; "switch Mcyc" ]
       [
         row "software FCFS" sw;
         row "software RR (1k quantum)" rr;
         row "hw threads (PS)" hw;
       ])

let () =
  latency_hiding ();
  tail_latency ()
