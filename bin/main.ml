(* switchless-sim: command-line driver for the simulator.

   Subcommands expose the library-level experiment runners with tunable
   parameters, for interactive exploration beyond the fixed sweeps in
   bench/main.exe:

     switchless-sim params
     switchless-sim io --design mwait --rate 0.8 --count 5000
     switchless-sim wakeup --ticks 1000 --period 10000
     switchless-sim syscall --design hw --work 500 --calls 1000
     switchless-sim server --design hw --rate 0.8 --cv2 16 --cores 2
     switchless-sim lock --kind mcs.mwait --contenders 64 --cs 100 *)

open Cmdliner

module Params = Switchless.Params
module Io_path = Sl_os.Io_path
module Server = Sl_dist.Server
module Histogram = Sl_util.Histogram
module Tablefmt = Sl_util.Tablefmt

let p = Params.default

(* --- shared options --- *)

let seed =
  Arg.(value & opt int64 1L & info [ "seed" ] ~docv:"SEED" ~doc:"Simulation seed.")

let count =
  Arg.(value & opt int 2000 & info [ "count" ] ~docv:"N" ~doc:"Events to simulate.")

let rate =
  Arg.(
    value
    & opt float 0.5
    & info [ "rate" ] ~docv:"R" ~doc:"Arrival rate in events per 1000 cycles.")

(* --- params --- *)

let params_cmd =
  let run () =
    let rows =
      [
        ("smt width", float_of_int p.Params.smt_width);
        ("pipeline start (cyc)", float_of_int p.Params.pipeline_start_cycles);
        ("GP context (B)", float_of_int p.Params.regstate_bytes_gp);
        ("vector context (B)", float_of_int p.Params.regstate_bytes_full);
        ("register file (KiB)", float_of_int (p.Params.rf_capacity_bytes / 1024));
        ("L2 transfer (cyc)", float_of_int p.Params.l2_transfer_cycles);
        ("L3 transfer (cyc)", float_of_int p.Params.l3_transfer_cycles);
        ("DRAM transfer (cyc)", float_of_int p.Params.dram_transfer_cycles);
        ("monitor wake (cyc)", float_of_int p.Params.monitor_wake_cycles);
        ("monitor table capacity", float_of_int p.Params.monitor_capacity_per_core);
        ("trap entry+exit (cyc)", float_of_int (p.Params.trap_entry_cycles + p.Params.trap_exit_cycles));
        ("trap pollution (cyc)", float_of_int p.Params.trap_pollution_cycles);
        ("interrupt entry+exit (cyc)", float_of_int (p.Params.interrupt_entry_cycles + p.Params.interrupt_exit_cycles));
        ("IPI (cyc)", float_of_int p.Params.ipi_cycles);
        ("sched decision (cyc)", float_of_int p.Params.sched_decision_cycles);
        ("cache warmup (cyc)", float_of_int p.Params.cache_warmup_cycles);
        ("vmexit entry+exit (cyc)", float_of_int (p.Params.vmexit_entry_cycles + p.Params.vmexit_exit_cycles));
      ]
    in
    Tablefmt.print
      (Tablefmt.render ~title:"cost model (see DESIGN.md for sources)"
         ~header:[ "parameter"; "value" ]
         (List.map (fun (k, v) -> [ Tablefmt.String k; Tablefmt.Float v ]) rows))
  in
  Cmd.v (Cmd.info "params" ~doc:"Print the cost model.") Term.(const run $ const ())

(* --- io --- *)

type io_design = Mwait | Polling | Interrupt

let io_design =
  let designs = [ ("mwait", Mwait); ("polling", Polling); ("interrupt", Interrupt) ] in
  Arg.(
    value
    & opt (enum designs) Mwait
    & info [ "design" ] ~docv:"DESIGN" ~doc:"One of mwait, polling, interrupt.")

let work =
  Arg.(
    value
    & opt int 500
    & info [ "work" ] ~docv:"CYCLES" ~doc:"Per-event processing cycles.")

let background =
  Arg.(value & flag & info [ "background" ] ~doc:"Run a best-effort batch job alongside.")

let io_cmd =
  let run design seed rate count work background =
    let cfg =
      {
        Io_path.params = p;
        seed;
        rate_per_kcycle = rate;
        per_packet_work = work;
        count;
        background;
      }
    in
    let stats =
      match design with
      | Mwait -> Io_path.run_mwait cfg
      | Polling -> Io_path.run_polling cfg
      | Interrupt -> Io_path.run_interrupt cfg
    in
    Printf.printf "processed %d (dropped %d) in %d cycles\n" stats.Io_path.processed
      stats.Io_path.dropped stats.Io_path.elapsed_cycles;
    Printf.printf "latency: %s\n"
      (Format.asprintf "%a" Histogram.pp_summary stats.Io_path.latencies);
    Printf.printf "cycles: useful %.0f | poll %.0f | overhead %.0f | waste %.1f%%\n"
      stats.Io_path.useful_cycles stats.Io_path.poll_cycles stats.Io_path.overhead_cycles
      (100.0 *. Io_path.wasted_fraction stats)
  in
  Cmd.v
    (Cmd.info "io" ~doc:"NIC RX path under one of the three designs.")
    Term.(const run $ io_design $ seed $ rate $ count $ work $ background)

(* --- wakeup --- *)

let wakeup_cmd =
  let ticks =
    Arg.(value & opt int 1000 & info [ "ticks" ] ~docv:"N" ~doc:"Timer ticks.")
  in
  let period =
    Arg.(value & opt int 10_000 & info [ "period" ] ~docv:"CYCLES" ~doc:"Tick period.")
  in
  let run ticks period =
        let m = Io_path.timer_wakeup_mwait p ~ticks ~period in
    let i = Io_path.timer_wakeup_interrupt p ~ticks ~period in
    Printf.printf "mwait:     %s\n" (Format.asprintf "%a" Histogram.pp_summary m);
    Printf.printf "interrupt: %s\n" (Format.asprintf "%a" Histogram.pp_summary i)
  in
  Cmd.v
    (Cmd.info "wakeup" ~doc:"Timer-tick wakeup latency, mwait vs interrupt.")
    Term.(const run $ ticks $ period)

(* --- syscall --- *)

type sys_design = Trap | Flexsc | Hw

let syscall_cmd =
  let designs = [ ("trap", Trap); ("flexsc", Flexsc); ("hw", Hw) ] in
  let design =
    Arg.(
      value
      & opt (enum designs) Hw
      & info [ "design" ] ~docv:"DESIGN" ~doc:"One of trap, flexsc, hw.")
  in
  let calls =
    Arg.(value & opt int 1000 & info [ "calls" ] ~docv:"N" ~doc:"Calls to time.")
  in
  let run design work calls =
    let module Sim = Sl_engine.Sim in
    let module Chip = Switchless.Chip in
    let module Ptid = Switchless.Ptid in
    let module Swsched = Sl_baseline.Swsched in
    let module Syscall = Sl_os.Syscall in
        let per_call =
      match design with
      | Trap ->
        let sim = Sim.create () in
        let sched = Swsched.create sim p ~warmup:false ~cores:1 () in
        let app = Swsched.thread sched () in
        let total = ref 0 in
        Sim.spawn sim (fun () ->
            Swsched.exec app 10;
            let t0 = Sim.now () in
            for _ = 1 to calls do
              Syscall.Trap.call app p ~kernel_work:work
            done;
            total := Sim.now () - t0);
        Sim.run sim;
        float_of_int !total /. float_of_int calls
      | Flexsc ->
        let sim = Sim.create () in
        let sched = Swsched.create sim p ~warmup:false ~cores:1 () in
        let kernel_core = Switchless.Smt_core.create sim p ~core_id:50 in
        let fx = Syscall.Flexsc.create sim p ~kernel_core () in
        let app = Swsched.thread sched () in
        let total = ref 0 in
        Sim.spawn sim (fun () ->
            Swsched.exec app 10;
            let t0 = Sim.now () in
            for _ = 1 to calls do
              Syscall.Flexsc.call fx app ~kernel_work:work
            done;
            total := Sim.now () - t0);
        Sim.run sim;
        float_of_int !total /. float_of_int calls
      | Hw ->
        let sim = Sim.create () in
        let chip = Chip.create sim p ~cores:2 in
        let sys = Syscall.Hw_thread.create chip ~core:1 ~server_ptid:100 in
        let total = ref 0 in
        let app = Chip.add_thread chip ~core:0 ~ptid:1 ~mode:Ptid.Supervisor () in
        Chip.attach app (fun th ->
            let t0 = Sim.now () in
            for _ = 1 to calls do
              Syscall.Hw_thread.call sys ~client:th ~kernel_work:work
            done;
            total := Sim.now () - t0);
        Chip.boot app;
        Sim.run sim;
        float_of_int !total /. float_of_int calls
    in
    Printf.printf "%.1f cycles/call (%.1f mechanism tax)\n" per_call
      (per_call -. float_of_int work)
  in
  Cmd.v
    (Cmd.info "syscall" ~doc:"Cycles per system call under one design.")
    Term.(const run $ design $ work $ calls)

(* --- server --- *)

type srv_design = Sw | Sw_rr | Hwpool

let server_cmd =
  let designs = [ ("sw", Sw); ("sw-rr", Sw_rr); ("hw", Hwpool) ] in
  let design =
    Arg.(
      value
      & opt (enum designs) Hwpool
      & info [ "design" ] ~docv:"DESIGN" ~doc:"One of sw, sw-rr, hw.")
  in
  let cores =
    Arg.(value & opt int 2 & info [ "cores" ] ~docv:"N" ~doc:"Server cores.")
  in
  let cv2 =
    Arg.(
      value
      & opt float 1.0
      & info [ "cv2" ] ~docv:"CV2" ~doc:"Service-time squared coef. of variation.")
  in
  let mean =
    Arg.(
      value & opt float 2000.0 & info [ "mean" ] ~docv:"CYCLES" ~doc:"Mean service time.")
  in
  let run design seed rate count cores cv2 mean =
    let service =
      if cv2 <= 1.0 then Sl_util.Dist.Exponential mean
      else Sl_util.Dist.bimodal_with_cv2 ~mean ~cv2 ~p_long:0.02
    in
    let cfg = { Server.params = p; seed; cores; rate_per_kcycle = rate; service; count } in
    let stats =
      match design with
      | Sw -> Server.run_software cfg
      | Sw_rr -> Server.run_software ~quantum:5000 cfg
      | Hwpool -> Server.run_hw_pool cfg
    in
    Printf.printf "completed %d in %d cycles\n" stats.Server.completed
      stats.Server.elapsed_cycles;
    Printf.printf "latency: %s\n"
      (Format.asprintf "%a" Histogram.pp_summary stats.Server.latencies);
    Printf.printf "slowdown: p50 %.2f | p99 %.2f | p999 %.2f\n"
      (Server.percentile stats.Server.slowdowns 0.5)
      (Server.percentile stats.Server.slowdowns 0.99)
      (Server.percentile stats.Server.slowdowns 0.999);
    if stats.Server.switch_overhead_cycles > 0.0 then
      Printf.printf "context-switch overhead: %.0f cycles total\n"
        stats.Server.switch_overhead_cycles
  in
  Cmd.v
    (Cmd.info "server" ~doc:"Thread-per-request server tail latency.")
    Term.(const run $ design $ seed $ rate $ count $ cores $ cv2 $ mean)

(* --- lock --- *)

let lock_cmd =
  let module Sim = Sl_engine.Sim in
  let module Chip = Switchless.Chip in
  let module Isa = Switchless.Isa in
  let module Ptid = Switchless.Ptid in
  let module Smt_core = Switchless.Smt_core in
  let module Lock = Sl_sync.Lock in
  let kinds = List.map (fun k -> (Lock.kind_name k, k)) Lock.all_kinds in
  let kind =
    Arg.(
      value
      & opt (enum kinds) Lock.Park_mwait
      & info [ "kind" ] ~docv:"KIND"
          ~doc:
            (Printf.sprintf "Lock algorithm: one of %s."
               (String.concat ", " (List.map fst kinds))))
  in
  let contenders =
    Arg.(
      value & opt int 16
      & info [ "contenders" ] ~docv:"N" ~doc:"Threads contending for the lock.")
  in
  let cs =
    Arg.(
      value & opt int 400
      & info [ "cs" ] ~docv:"CYCLES" ~doc:"Critical-section length in cycles.")
  in
  let total =
    Arg.(
      value & opt int 2000
      & info [ "total" ] ~docv:"N" ~doc:"Total critical sections to run.")
  in
  let placement =
    Arg.(
      value
      & opt (enum [ ("hot", `Hot); ("rr", `Rr) ]) `Rr
      & info [ "placement" ] ~docv:"P"
          ~doc:"Thread placement: hot (all on core 0) or rr (round-robin).")
  in
  let patience =
    Arg.(
      value
      & opt (some int) None
      & info [ "patience" ] ~docv:"CYCLES"
          ~doc:"Bound each mwait park with a retry deadline (default: park forever).")
  in
  let run kind n cs total placement patience =
    let cores = 4 in
    let sim = Sim.create () in
    let params = { p with Params.monitor_capacity_per_core = 1_000_000 } in
    let chip = Chip.create sim params ~cores in
    let lock = Lock.create ?patience chip kind in
    let remaining = ref total in
    for i = 0 to n - 1 do
      let core = match placement with `Hot -> 0 | `Rr -> i mod cores in
      let th = Chip.add_thread chip ~core ~ptid:(i + 1) ~mode:Ptid.User () in
      Chip.attach th (fun t ->
          let continue_ = ref true in
          while !continue_ do
            Lock.acquire lock t;
            if !remaining > 0 then begin
              decr remaining;
              Isa.exec t cs
            end
            else continue_ := false;
            Lock.release lock t
          done);
      Chip.boot th
    done;
    Sim.run sim;
    let st = Lock.stats lock in
    let sum k =
      let acc = ref 0.0 in
      for c = 0 to cores - 1 do
        acc := !acc +. Smt_core.work_done (Chip.exec_core chip c) k
      done;
      !acc
    in
    let useful = sum Smt_core.Useful
    and poll = sum Smt_core.Poll
    and overhead = sum Smt_core.Overhead in
    let burn = useful +. poll +. overhead in
    Printf.printf "%s: %d critical sections over %d contenders in %d cycles (%.0f cycles/acquire)\n"
      (Lock.kind_name kind) total n (Sim.time sim)
      (float_of_int (Sim.time sim) /. float_of_int (max 1 total));
    Printf.printf "handoff (release->grant): %s\n"
      (Format.asprintf "%a" Histogram.pp_summary st.Lock.handoff);
    Printf.printf "contended %d/%d | parks %d | wakes %d\n" st.Lock.contended
      st.Lock.acquires st.Lock.parks st.Lock.wakes;
    Printf.printf "poll fraction %.3f of %.0f executed cycles\n"
      (if burn <= 0.0 then 0.0 else poll /. burn)
      burn;
    Printf.printf "fairness: acquires max-min spread %d | mean FIFO distance %.2f\n"
      (st.Lock.max_count - st.Lock.min_count)
      st.Lock.fifo_distance_mean
  in
  Cmd.v
    (Cmd.info "lock"
       ~doc:
         "One E-LOCK contention point: a lock algorithm under N contenders \
          with a fixed critical section.")
    Term.(const run $ kind $ contenders $ cs $ total $ placement $ patience)

(* --- load --- *)

type load_design = L_mwait | L_polling | L_irq | L_flexsc

let load_cmd =
  let module Arrivals = Sl_workload.Arrivals in
  let module Latency = Sl_workload.Latency in
  let designs =
    [ ("mwait", L_mwait); ("polling", L_polling); ("irq", L_irq); ("flexsc", L_flexsc) ]
  in
  let design =
    Arg.(
      value
      & opt (enum designs) L_mwait
      & info [ "design" ] ~docv:"DESIGN" ~doc:"One of mwait, polling, irq, flexsc.")
  in
  let dists = [ ("exp", `Exp); ("bimodal", `Bimodal); ("pareto", `Pareto); ("constant", `Constant) ] in
  let dist =
    Arg.(
      value
      & opt (enum dists) `Exp
      & info [ "dist" ] ~docv:"DIST" ~doc:"Service distribution: exp, bimodal, pareto, constant.")
  in
  let mean =
    Arg.(
      value & opt float 1400.0
      & info [ "mean" ] ~docv:"CYCLES" ~doc:"Mean service demand.")
  in
  let cv2 =
    Arg.(
      value & opt float 16.0
      & info [ "cv2" ] ~docv:"CV2" ~doc:"Squared coef. of variation (bimodal only).")
  in
  let load =
    Arg.(
      value & opt float 0.6
      & info [ "load" ] ~docv:"RHO"
          ~doc:"Offered load as a fraction of one serving pipe's capacity.")
  in
  let slo =
    Arg.(
      value & opt int 30_000
      & info [ "slo" ] ~docv:"CYCLES" ~doc:"Latency SLO for goodput accounting.")
  in
  let amplitude =
    Arg.(
      value & opt float 0.0
      & info [ "amplitude" ] ~docv:"A"
          ~doc:"MMPP burstiness amplitude in [0,1); 0 is plain Poisson.")
  in
  let dwell =
    Arg.(
      value & opt float 200_000.0
      & info [ "dwell" ] ~docv:"CYCLES" ~doc:"Mean MMPP phase dwell time.")
  in
  let run design dist mean cv2 load slo amplitude dwell seed count =
    let module Io = Io_path in
    let service =
      match dist with
      | `Exp -> Sl_util.Dist.Exponential mean
      | `Bimodal -> Sl_util.Dist.bimodal_with_cv2 ~mean ~cv2 ~p_long:0.02
      | `Pareto ->
        (* shape 2.5: heavy tail with finite variance; scale set so the
           mean lands on [mean]. *)
        Sl_util.Dist.Pareto { scale = mean *. 1.5 /. 2.5; shape = 2.5 }
      | `Constant -> Sl_util.Dist.Constant mean
    in
    let rate = load *. 1000.0 /. mean in
    let arrivals =
      if amplitude <= 0.0 then Arrivals.poisson ~rate_per_kcycle:rate
      else Arrivals.bursty ~rate_per_kcycle:rate ~amplitude ~mean_dwell:dwell
    in
    let cfg = { Io.params = p; seed; arrivals; service; count; slo } in
    let r =
      match design with
      | L_mwait -> Io.run_load_mwait cfg
      | L_polling -> Io.run_load_polling cfg
      | L_irq -> Io.run_load_interrupt cfg
      | L_flexsc -> Io.run_load_flexsc cfg
    in
    Printf.printf "offered %.3f req/kcycle (load %.2f), served %d\n" rate load
      r.Io.lat.Latency.count;
    Printf.printf "latency: %s\n"
      (Format.asprintf "%a" Latency.pp_summary r.Io.lat);
    Printf.printf "cycles: useful %.0f | poll %.0f | overhead %.0f | waste %.1f%%\n"
      r.Io.io.Io.useful_cycles r.Io.io.Io.poll_cycles r.Io.io.Io.overhead_cycles
      (100.0 *. Io.wasted_fraction r.Io.io)
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:
         "Offered-load point for one serving design: tail latency, SLO misses, \
          goodput (the interactive face of bench e16).")
    Term.(
      const run $ design $ dist $ mean $ cv2 $ load $ slo $ amplitude $ dwell
      $ seed $ count)

(* --- netstack --- *)

let netstack_cmd =
  let loss =
    Arg.(
      value & opt float 0.0 & info [ "loss" ] ~docv:"P" ~doc:"Per-link drop probability.")
  in
  let segments =
    Arg.(value & opt int 300 & info [ "segments" ] ~docv:"N" ~doc:"Segments to transfer.")
  in
  let link_delay =
    Arg.(
      value & opt int 2000 & info [ "link-delay" ] ~docv:"CYCLES" ~doc:"One-way delay.")
  in
  let run seed loss segments link_delay =
    let s =
      Sl_os.Netstack.run ~seed ~loss ~link_delay ~params:p
        ~segments ()
    in
    Printf.printf
      "delivered %d | retransmissions %d | duplicates %d | acks %d\n"
      s.Sl_os.Netstack.delivered s.Sl_os.Netstack.retransmissions
      s.Sl_os.Netstack.duplicates s.Sl_os.Netstack.acks_sent;
    Printf.printf "elapsed %d cycles | goodput %.4f segments/kcycle\n"
      s.Sl_os.Netstack.elapsed_cycles s.Sl_os.Netstack.goodput_per_kcycle
  in
  Cmd.v
    (Cmd.info "netstack" ~doc:"Interrupt-free reliable transport over lossy links.")
    Term.(const run $ seed $ loss $ segments $ link_delay)

(* --- vm --- *)

let vm_cmd =
  let slice =
    Arg.(value & opt int 20_000 & info [ "slice" ] ~docv:"CYCLES" ~doc:"Time slice.")
  in
  let vms = Arg.(value & opt int 2 & info [ "vms" ] ~docv:"N" ~doc:"Virtual machines.") in
  let vcpus = Arg.(value & opt int 2 & info [ "vcpus" ] ~docv:"N" ~doc:"vCPUs per VM.") in
  let run slice vms vcpus =
        let hw = Sl_os.Vm.hw_timeshare p ~vms ~vcpus ~slice ~duration:2_000_000 in
    let sw = Sl_os.Vm.sw_timeshare p ~vms ~vcpus ~slice ~duration:2_000_000 in
    Printf.printf "hardware threads: %.1f%% guest utilization (%d switches)\n"
      (100.0 *. hw.Sl_os.Vm.utilization) hw.Sl_os.Vm.switches;
    Printf.printf "software threads: %.1f%% guest utilization (%d switches)\n"
      (100.0 *. sw.Sl_os.Vm.utilization) sw.Sl_os.Vm.switches
  in
  Cmd.v
    (Cmd.info "vm" ~doc:"VM time-sharing: world switches by start/stop.")
    Term.(const run $ slice $ vms $ vcpus)

(* --- explore --- *)

let explore_cmd =
  let module Explore = Sl_explore.Explore in
  let module Scenario = Sl_explore.Scenario in
  let scenario =
    Arg.(
      value
      & opt string "boot.replica"
      & info [ "scenario" ] ~docv:"NAME"
          ~doc:
            (Printf.sprintf "Exploration target, one of: %s."
               (String.concat ", " Scenario.names)))
  in
  let trials =
    Arg.(
      value & opt int 60
      & info [ "trials" ] ~docv:"N" ~doc:"Exploration trials to run.")
  in
  let max_shrink =
    Arg.(
      value
      & opt int Explore.default_max_shrink_runs
      & info [ "max-shrink-runs" ] ~docv:"N"
          ~doc:"Per-failure scenario-execution budget for the shrinker.")
  in
  let max_seconds =
    Arg.(
      value & opt float 0.0
      & info [ "max-seconds" ] ~docv:"S"
          ~doc:
            "Wall-clock budget; exploration stops early once exceeded \
             (0 = no limit).  A budget-cut run is valid but no longer \
             machine-independent.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Also write the JSON report to $(docv).")
  in
  let expect_repros =
    Arg.(
      value & flag
      & info [ "expect-repros" ]
          ~doc:
            "Invert the exit status: fail when NO repro is found.  For CI \
             jobs that point the explorer at a known-seeded regression to \
             prove the search still finds it.")
  in
  let run seed scenario trials max_shrink_runs max_seconds out expect_repros =
    match Scenario.find scenario with
    | None ->
      Printf.eprintf "explore: unknown scenario %S; available: %s\n" scenario
        (String.concat ", " Scenario.names);
      exit 2
    | Some sc ->
      let cfg = { Explore.seed; trials; scenario = sc; max_shrink_runs } in
      let stop =
        if max_seconds <= 0.0 then fun () -> false
        else begin
          let t0 = Unix.gettimeofday () in
          fun () -> Unix.gettimeofday () -. t0 > max_seconds
        end
      in
      let report = Explore.run ~stop cfg in
      let json = Explore.report_to_json report in
      print_endline json;
      (match out with
      | None -> ()
      | Some path ->
        let oc = open_out path in
        output_string oc (json ^ "\n");
        close_out oc);
      (* Every repro must reproduce standalone: parse its spec back and
         re-run the scenario outside the exploration loop.  A repro that
         fails this check means shrinking or spec round-tripping broke —
         always a tool bug worth failing loudly on. *)
      let unreproducible =
        List.filter
          (fun (r : Explore.repro) ->
            match Sl_fault.Fault.parse_spec r.Explore.spec with
            | Error _ -> true
            | Ok plan -> (sc.Scenario.run plan).Scenario.pass)
          report.Explore.repros
      in
      List.iter
        (fun (r : Explore.repro) ->
          Printf.eprintf "explore: repro %s (%s; shrunk from %s in %d runs)\n"
            r.Explore.spec r.Explore.reason r.Explore.original_spec
            r.Explore.shrink_runs)
        report.Explore.repros;
      List.iter
        (fun (r : Explore.repro) ->
          Printf.eprintf "explore: REPRO DOES NOT REPRODUCE STANDALONE: %s\n"
            r.Explore.spec)
        unreproducible;
      if unreproducible <> [] then exit 1;
      if expect_repros then begin
        if report.Explore.repros = [] then begin
          Printf.eprintf
            "explore: expected to find a repro in %S and found none\n"
            scenario;
          exit 1
        end
      end
      else if report.Explore.repros <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Coverage-guided fault-space exploration (nemesis): search fault \
          plans for oracle/sanitizer failures, delta-debug each failure to \
          a minimal SWITCHLESS_FAULTS spec, and report JSON.  Deterministic \
          for a fixed -seed/-trials.")
    Term.(
      const run $ seed $ scenario $ trials $ max_shrink $ max_seconds $ out
      $ expect_repros)

let lint_cmd =
  let roots =
    Arg.(
      value
      & pos_all string [ "lib" ]
      & info [] ~docv:"DIR" ~doc:"Source roots to scan (default: lib).")
  in
  let run roots =
    let issues =
      try List.concat_map Sl_analysis.Lint.scan_tree roots with
      | Sys_error msg ->
        Printf.eprintf "lint: %s\n" msg;
        exit 2
    in
    List.iter (fun i -> print_endline (Sl_analysis.Lint.to_string i)) issues;
    match issues with
    | [] -> print_endline "lint: no issues"
    | _ :: _ -> exit 1
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Determinism/style lint: no wall-clock or entropy in lib, no printing \
          outside util, every module has an interface.")
    Term.(const run $ roots)

let check_cmd =
  let module S = Sl_staticcheck in
  let roots =
    Arg.(
      value
      & pos_all string [ "lib" ]
      & info [] ~docv:"DIR"
          ~doc:"Source roots whose build trees to analyze (default: lib).")
  in
  let allow =
    Arg.(
      value
      & opt string "staticcheck.allow"
      & info [ "allow" ] ~docv:"FILE"
          ~doc:"Allowlist of justified findings (rule file binding why).")
  in
  let report_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "report" ] ~docv:"FILE"
          ~doc:"Also write the findings report (Report format) to $(docv).")
  in
  let run roots allow report_file =
    let result =
      try S.Staticcheck.run ~allow roots with
      | Failure msg | Sys_error msg ->
        Printf.eprintf "check: %s\n" msg;
        exit 2
    in
    let findings = result.S.Staticcheck.findings in
    let unused = result.S.Staticcheck.unused in
    List.iter (fun s -> print_endline (S.Site.to_string s)) findings;
    List.iter
      (fun (e : S.Allowlist.entry) ->
        Printf.printf
          "check: stale allowlist entry matches nothing: %s %s %s\n"
          e.S.Allowlist.rule e.S.Allowlist.file e.S.Allowlist.ident)
      unused;
    (match report_file with
    | None -> ()
    | Some path ->
      let reports = List.map S.Site.to_report findings in
      let oc = open_out path in
      let ppf = Format.formatter_of_out_channel oc in
      List.iter
        (fun r -> Format.fprintf ppf "%a@." Sl_analysis.Report.pp r)
        reports;
      Format.fprintf ppf "%s@." (Sl_analysis.Report.summary reports);
      Format.pp_print_flush ppf ();
      close_out oc);
    Printf.printf "check: %s; %d allowlisted\n"
      (Sl_analysis.Report.summary (List.map S.Site.to_report findings))
      (List.length result.S.Staticcheck.allowed);
    if findings <> [] || unused <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Typed static analysis over the compiled typedtrees: \
          arm-before-park/register protocol, domain-safety of top-level \
          state, determinism/print hygiene, and the [@@sl.zero_alloc] \
          allocation budget.")
    Term.(const run $ roots $ allow $ report_file)

let () =
  let info =
    Cmd.info "switchless-sim" ~version:"1.0.0"
      ~doc:
        "Simulator for the hardware threading model of 'A Case Against (Most) \
         Context Switches' (HotOS '21)."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            params_cmd;
            io_cmd;
            wakeup_cmd;
            syscall_cmd;
            server_cmd;
            lock_cmd;
            load_cmd;
            netstack_cmd;
            vm_cmd;
            explore_cmd;
            lint_cmd;
            check_cmd;
          ]))
