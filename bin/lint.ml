(* Standalone lint driver, wired into [dune runtest] from the root dune
   file.  Scans the given roots (default: lib) and fails the build when
   any determinism/print/missing-mli rule is violated. *)

let () =
  let roots =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as roots) -> roots
    | _ -> [ "lib" ]
  in
  let issues =
    try List.concat_map Sl_analysis.Lint.scan_tree roots with
    | Sys_error msg ->
      Printf.eprintf "lint: %s\n" msg;
      exit 2
  in
  List.iter (fun i -> print_endline (Sl_analysis.Lint.to_string i)) issues;
  match issues with
  | [] -> print_endline "lint: no issues"
  | _ :: _ ->
    Printf.eprintf "lint: %d issue(s)\n" (List.length issues);
    exit 1
